package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event types: every control-plane transition the cluster can take. The
// chaos ledger asserts that each ledger-relevant transition (epoch bump,
// fence, adoption) is explained by one of these in the merged timeline.
const (
	// EvEpochBump records a node adopting a table with a higher epoch.
	EvEpochBump = "epoch_bump"
	// EvFailoverDecision records the steward marking a member down: the
	// cause (missed probes) and the vote set (suspects vs live members).
	EvFailoverDecision = "failover_decision"
	// EvQuorumHold records the steward declining to fail over for lack of
	// a live majority.
	EvQuorumHold = "quorum_hold"
	// EvFenceWrite records writing an epoch fence into a WAL directory.
	EvFenceWrite = "fence_write"
	// EvQuarantineStart / EvQuarantineEnd bracket an adoption quarantine.
	EvQuarantineStart = "quarantine_start"
	EvQuarantineEnd   = "quarantine_end"
	// EvSnapshotAdopt records importing a dead peer's fenced snapshot.
	EvSnapshotAdopt = "snapshot_adopt"
	// EvPartitionDrop records a node dropping a partition it no longer owns.
	EvPartitionDrop = "partition_drop"
	// EvReplay summarizes a restart's WAL replay (sessions, records, RTO).
	EvReplay = "restart_replay"
	// EvFencedOnDisk records a restarted node declining a partition whose
	// directory is fenced by a newer epoch.
	EvFencedOnDisk = "fenced_on_disk"
	// EvStaleEpoch records a write rejected by the epoch fence (412).
	EvStaleEpoch = "stale_epoch_reject"
	// EvMemberJoin records the steward admitting a new member (joining),
	// and its later promotion to live once it answers probes.
	EvMemberJoin = "member_join"
	// EvMemberRejoin records the steward re-upping a down member whose
	// probes recovered.
	EvMemberRejoin = "member_rejoin"
	// EvMemberDrain records a member entering draining, and its retirement
	// (left) once the planner has migrated it empty.
	EvMemberDrain = "member_drain"
	// EvMigrationPlan records the steward deciding to move one partition
	// (the plan's source, target and reason).
	EvMigrationPlan = "migration_plan"
	// EvMigrationCutover records a target installing a shipped snapshot and
	// taking over a migrated partition without quarantine.
	EvMigrationCutover = "migration_cutover"
	// EvMigrationAbort records a migration unwound before cutover (ship
	// failure or steward loss); the source unfences and resumes serving.
	EvMigrationAbort = "migration_abort"
)

// Levels order event severity for the structured-log mirror.
const (
	LevelDebug = "debug"
	LevelInfo  = "info"
	LevelWarn  = "warn"
)

// Event is one structured control-plane journal entry.
type Event struct {
	// Seq orders events within one node's journal (monotonic per node).
	Seq uint64 `json:"seq"`
	// TimeUnixNano is the event time.
	TimeUnixNano int64 `json:"time_unix_nano"`
	// Node is the recording node (-1 standalone).
	Node int `json:"node"`
	// Epoch is the cluster epoch the event applies to (the *new* epoch for
	// an epoch bump or failover decision).
	Epoch uint64 `json:"epoch,omitempty"`
	// Type is one of the Ev* constants.
	Type string `json:"type"`
	// Level is the log severity (info when empty).
	Level string `json:"level,omitempty"`
	// Partition is the partition concerned (-1 when node-wide).
	Partition int `json:"partition"`
	// Cause names why the transition happened (e.g. "probe_timeout",
	// "kill", "restart") — the field the chaos ledger check keys on.
	Cause string `json:"cause,omitempty"`
	// Detail is a human-readable elaboration (vote sets, counts, timings).
	Detail string `json:"detail,omitempty"`
	// RID correlates the event with a request trace, when one applies.
	RID string `json:"rid,omitempty"`
}

// EventsResponse is the /debug/events wire shape.
type EventsResponse struct {
	Node   int     `json:"node"`
	Events []Event `json:"events"`
}

// EventConfig parameterizes an EventLog.
type EventConfig struct {
	// Node stamps every event (-1 standalone).
	Node int
	// RingSize bounds the in-memory journal (0 selects 1024).
	RingSize int
	// Sink, when set, receives each event as one formatted log line — the
	// printf hook the ad-hoc Logf logging is funneled through, so existing
	// stdout/test logging keeps working underneath the structured journal.
	Sink func(format string, args ...any)
	// Dir, when set, appends every event as one JSON line to
	// Dir/events.jsonl so the journal survives the process.
	Dir string
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

// EventLog is one node's control-plane journal: a bounded in-memory ring,
// an optional durable JSONL file, and a leveled line-log mirror. Emit is
// cheap and safe for concurrent use; all methods tolerate a nil receiver.
type EventLog struct {
	node  int
	sink  func(format string, args ...any)
	clock func() time.Time

	mu    sync.Mutex
	seq   uint64
	ring  []Event
	count int // total emitted; ring[count % len] is the next slot
	file  *os.File
	enc   *json.Encoder
}

// NewEventLog builds an EventLog. A Dir that cannot be created degrades to
// memory-only journaling rather than failing the node.
func NewEventLog(cfg EventConfig) *EventLog {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1024
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	l := &EventLog{
		node:  cfg.Node,
		sink:  cfg.Sink,
		clock: cfg.Clock,
		ring:  make([]Event, cfg.RingSize),
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err == nil {
			f, err := os.OpenFile(filepath.Join(cfg.Dir, "events.jsonl"),
				os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err == nil {
				l.file = f
				l.enc = json.NewEncoder(f)
			}
		}
	}
	return l
}

// Close releases the durable file, if any.
func (l *EventLog) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file != nil {
		_ = l.file.Close()
		l.file, l.enc = nil, nil
	}
}

// Emit journals one event, filling Seq, TimeUnixNano and Node, mirroring a
// formatted line to the sink, and appending to the durable file when
// configured. Nil-safe: a nil log drops the event.
func (l *EventLog) Emit(e Event) {
	if l == nil {
		return
	}
	if e.Level == "" {
		e.Level = LevelInfo
	}
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	e.TimeUnixNano = l.clock().UnixNano()
	e.Node = l.node
	l.ring[l.count%len(l.ring)] = e
	l.count++
	if l.enc != nil {
		_ = l.enc.Encode(e) // best effort; a full disk must not stop the node
	}
	sink := l.sink
	l.mu.Unlock()
	if sink != nil {
		sink("%s", formatEventLine(e))
	}
}

// Eventf is Emit with a printf Detail.
func (l *EventLog) Eventf(typ string, epoch uint64, partition int, cause, format string, args ...any) {
	if l == nil {
		return
	}
	l.Emit(Event{Type: typ, Epoch: epoch, Partition: partition, Cause: cause,
		Detail: fmt.Sprintf(format, args...)})
}

// Events snapshots the in-memory journal, oldest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.ring)
	start := 0
	if l.count > n {
		start = l.count - n
	}
	out := make([]Event, 0, l.count-start)
	for i := start; i < l.count; i++ {
		out = append(out, l.ring[i%n])
	}
	return out
}

// formatEventLine renders the structured event as one greppable log line:
//
//	level=info node=2 epoch=5 type=failover_decision part=- cause=probe_timeout detail="..."
func formatEventLine(e Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "level=%s node=%d", e.Level, e.Node)
	if e.Epoch != 0 {
		fmt.Fprintf(&b, " epoch=%d", e.Epoch)
	}
	fmt.Fprintf(&b, " type=%s", e.Type)
	if e.Partition >= 0 {
		fmt.Fprintf(&b, " partition=%d", e.Partition)
	}
	if e.Cause != "" {
		fmt.Fprintf(&b, " cause=%s", e.Cause)
	}
	if e.RID != "" {
		fmt.Fprintf(&b, " rid=%s", e.RID)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " detail=%q", e.Detail)
	}
	return b.String()
}

// MergeEvents interleaves several nodes' journals into one causally-ordered
// timeline: by timestamp, then node, then per-node sequence — the view
// `lactl events` renders and the chaos watcher asserts over.
func MergeEvents(journals ...[]Event) []Event {
	var out []Event
	for _, j := range journals {
		out = append(out, j...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.TimeUnixNano != b.TimeUnixNano {
			return a.TimeUnixNano < b.TimeUnixNano
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
	return out
}
