package trace

import (
	"encoding/json"
	"net/http"
	"sort"
)

// TraceResponse is the wire shape of /debug/trace and /debug/trace/slow.
type TraceResponse struct {
	Enabled             bool       `json:"enabled"`
	SlowThresholdMillis int64      `json:"slow_threshold_ms"`
	SpansStarted        uint64     `json:"spans_started"`
	SpansFinished       uint64     `json:"spans_finished"`
	SlowSpans           uint64     `json:"slow_spans"`
	Spans               []SpanJSON `json:"spans"`
}

// traceResponse assembles the wire shape from one snapshot, oldest first.
func traceResponse(r *Recorder, spans []Span) TraceResponse {
	started, finished, slow := r.Counters()
	resp := TraceResponse{
		Enabled:             r.Enabled(),
		SlowThresholdMillis: r.SlowThreshold().Milliseconds(),
		SpansStarted:        started,
		SpansFinished:       finished,
		SlowSpans:           slow,
		Spans:               make([]SpanJSON, 0, len(spans)),
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].StartUnixNano < spans[j].StartUnixNano })
	for i := range spans {
		resp.Spans = append(resp.Spans, spans[i].JSON())
	}
	return resp
}

func writeJSON(w http.ResponseWriter, body any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(body)
}

// Handler serves GET /debug/trace: the sampled span ring.
func Handler(r *Recorder) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, traceResponse(r, r.Spans()))
	}
}

// SlowHandler serves GET /debug/trace/slow: spans that met the threshold.
func SlowHandler(r *Recorder) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, traceResponse(r, r.SlowSpans()))
	}
}

// EventsHandler serves GET /debug/events: the node's control-plane journal.
func EventsHandler(l *EventLog) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		resp := EventsResponse{Node: -1, Events: l.Events()}
		if l != nil {
			resp.Node = l.node
		}
		if resp.Events == nil {
			resp.Events = []Event{}
		}
		writeJSON(w, resp)
	}
}

// Mount attaches the three debug endpoints to mux. Either argument may be
// nil; the endpoints still answer (with empty state) so probes can
// distinguish "tracing off" from "endpoint missing".
func Mount(mux *http.ServeMux, r *Recorder, l *EventLog) {
	mux.HandleFunc("GET /debug/trace", Handler(r))
	mux.HandleFunc("GET /debug/trace/slow", SlowHandler(r))
	mux.HandleFunc("GET /debug/events", EventsHandler(l))
}
