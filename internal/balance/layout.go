// Package balance contains the LevelArray batch-layout arithmetic and the
// balance analysis used both by the algorithm itself and by the experiments
// that validate the paper's theory.
//
// Layout implements Section 4's construction: an array of size (1+ε)n split
// into geometrically shrinking batches, with ε = 1 (total size 2n) as the
// paper's default. The analysis-side definitions from Section 5 — the
// reach-probability targets π_j, the expected occupancy targets n_j, the
// "overcrowded" thresholds, and the balanced/fully-balanced predicates — are
// implemented here so that simulator experiments and the healing benchmark
// can measure exactly the quantities the proofs reason about.
package balance

import (
	"fmt"
	"math"
)

// DefaultEpsilon is the paper's ε = 1 choice, which makes the main array hold
// exactly 2n slots (3n/2 in batch 0 and n/2^{i+1} in batch i ≥ 1).
const DefaultEpsilon = 1.0

// Batch describes one contiguous batch of slots in the main array.
type Batch struct {
	// Index is the batch number, starting at 0.
	Index int
	// Offset is the index of the batch's first slot in the main array.
	Offset int
	// Size is the number of slots in the batch.
	Size int
}

// WordSlots is the number of slots per bitmap word of the word-packed
// substrate (tas.WordBits). Batch offsets are aligned to this boundary so
// word-at-a-time scans and probes never straddle a batch boundary within a
// word ambiguously.
const WordSlots = 64

// Layout is the immutable batch geometry for a LevelArray with capacity n.
//
// The main array has size roughly (1+ε)n and is divided into batches
// B0, B1, ... where B0 holds n(1+ε/2) slots and Bi holds εn/2^{i+1} slots for
// i ≥ 1, until batches would become empty. A backup array of exactly n slots
// follows the main array, so every Get can be satisfied even in executions
// that defeat the randomized path.
//
// Batches spanning at least one full bitmap word (WordSlots slots) start at a
// word-aligned offset; the unused padding slots between such batches belong
// to no batch and are never probed by the randomized path (only the
// last-resort linear sweep and Adopt can occupy them). Sub-word batches are
// packed densely at the tail — aligning them would inflate small arrays by a
// factor of WordSlots while the few words they share are scanned in a couple
// of loads anyway. The ε-accounting therefore reads: MainSize ≤
// floor((1+ε)n) + WordSlots·(number of word-sized batches), with the padding
// reported by PaddingSlots.
type Layout struct {
	capacity int
	epsilon  float64
	batches  []Batch
	mainSize int
	padding  int
}

// NewLayout builds the batch geometry for capacity n and space parameter
// epsilon. Capacity must be at least 1; epsilon must be positive. Use
// DefaultEpsilon for the paper's 2n configuration.
func NewLayout(capacity int, epsilon float64) (*Layout, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("balance: capacity %d must be at least 1", capacity)
	}
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return nil, fmt.Errorf("balance: epsilon %v must be a positive finite number", epsilon)
	}

	n := float64(capacity)
	batch0 := int(math.Floor(n * (1 + epsilon/2)))
	if batch0 < 1 {
		batch0 = 1
	}
	batches := []Batch{{Index: 0, Offset: 0, Size: batch0}}
	offset := batch0
	padding := 0
	for i := 1; ; i++ {
		size := int(math.Floor(epsilon * n / math.Pow(2, float64(i+1))))
		if size < 1 {
			break
		}
		if size >= WordSlots {
			aligned := (offset + WordSlots - 1) / WordSlots * WordSlots
			padding += aligned - offset
			offset = aligned
		}
		batches = append(batches, Batch{Index: i, Offset: offset, Size: size})
		offset += size
	}
	return &Layout{
		capacity: capacity,
		epsilon:  epsilon,
		batches:  batches,
		mainSize: offset,
		padding:  padding,
	}, nil
}

// MustNewLayout is NewLayout but panics on invalid parameters. It is intended
// for tests and for callers constructing layouts from compile-time constants.
func MustNewLayout(capacity int, epsilon float64) *Layout {
	l, err := NewLayout(capacity, epsilon)
	if err != nil {
		panic(err)
	}
	return l
}

// Capacity returns n, the contention bound the layout was built for.
func (l *Layout) Capacity() int { return l.capacity }

// Epsilon returns the space parameter ε.
func (l *Layout) Epsilon() float64 { return l.epsilon }

// NumBatches returns the number of batches in the main array.
func (l *Layout) NumBatches() int { return len(l.batches) }

// Batch returns the geometry of batch i.
func (l *Layout) Batch(i int) Batch { return l.batches[i] }

// Batches returns a copy of all batch descriptors.
func (l *Layout) Batches() []Batch {
	out := make([]Batch, len(l.batches))
	copy(out, l.batches)
	return out
}

// MainSize returns the number of slots in the main (batched) array,
// including alignment padding between word-sized batches.
func (l *Layout) MainSize() int { return l.mainSize }

// PaddingSlots returns the number of main-array slots that belong to no
// batch: the gaps inserted to word-align every batch of at least WordSlots
// slots. The randomized probe path never targets them.
func (l *Layout) PaddingSlots() int { return l.padding }

// BackupSize returns the number of slots in the backup array (always exactly
// the capacity, per Section 4).
func (l *Layout) BackupSize() int { return l.capacity }

// TotalSize returns the total number of slots, main plus backup.
func (l *Layout) TotalSize() int { return l.mainSize + l.capacity }

// BatchOf returns the index of the batch containing main-array slot. Slots in
// the backup region (slot >= MainSize) are reported as NumBatches(), i.e. one
// past the last real batch; alignment-padding slots (which belong to no
// batch) are attributed to the nearest preceding batch. It panics for
// out-of-range slots.
func (l *Layout) BatchOf(slot int) int {
	if slot < 0 || slot >= l.TotalSize() {
		panic(fmt.Sprintf("balance: slot %d out of range [0, %d)", slot, l.TotalSize()))
	}
	if slot >= l.mainSize {
		return len(l.batches)
	}
	// Binary search over batch offsets.
	lo, hi := 0, len(l.batches)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if l.batches[mid].Offset <= slot {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// AnalysisBatches returns the number of batches the paper's analysis tracks,
// i.e. ceil(log2 log2 n), clamped to the number of real batches and to at
// least 1. Overcrowding and balance are defined over these batches only.
func (l *Layout) AnalysisBatches() int {
	n := float64(l.capacity)
	if n < 4 {
		return 1
	}
	v := int(math.Ceil(math.Log2(math.Log2(n))))
	if v < 1 {
		v = 1
	}
	if v > len(l.batches) {
		v = len(l.batches)
	}
	return v
}

// ReachProbabilityTarget returns π_j, the analysis's target upper bound on
// the probability that a Get reaches batch j: 1 for j = 0 and 1/2^{2^j+5} for
// j ≥ 1. For large j the value underflows to 0, which is the correct reading
// ("essentially never").
func (l *Layout) ReachProbabilityTarget(j int) float64 {
	if j <= 0 {
		return 1
	}
	exp := math.Pow(2, float64(j)) + 5
	return math.Pow(2, -exp)
}

// OccupancyTarget returns n_j = π_j · n, the analysis's target occupancy of
// batch j.
func (l *Layout) OccupancyTarget(j int) float64 {
	return l.ReachProbabilityTarget(j) * float64(l.capacity)
}

// OvercrowdedThreshold returns the minimum number of occupied slots at which
// batch j counts as overcrowded: 16·n_j = n/2^{2^j+1} for j ≥ 1. Batch 0 is
// never overcrowded in the analysis (16·n_0 = 16n exceeds its size), so its
// threshold is reported as one more than the batch size. The returned
// threshold is never below 1.
func (l *Layout) OvercrowdedThreshold(j int) int {
	if j < 0 || j >= len(l.batches) {
		panic(fmt.Sprintf("balance: batch %d out of range [0, %d)", j, len(l.batches)))
	}
	if j == 0 {
		return l.batches[0].Size + 1
	}
	threshold := 16 * l.OccupancyTarget(j)
	t := int(math.Floor(threshold))
	if t < 1 {
		t = 1
	}
	return t
}
