package balance

import (
	"fmt"
	"strings"

	"github.com/levelarray/levelarray/internal/tas"
)

// Occupancy is a per-batch count of occupied slots, as observed by scanning
// the slot space once. Index i holds the count for batch i; the final entry
// (index Layout.NumBatches()) holds the backup-array count.
type Occupancy []int

// MeasureOccupancy scans space and returns the per-batch occupancy according
// to layout. The space must have at least layout.TotalSize() slots; spaces
// holding only the main array (layout.MainSize() slots) are also accepted, in
// which case the backup count is zero. Word-packed spaces are scanned 64
// slots per atomic load.
func MeasureOccupancy(layout *Layout, space tas.Space) Occupancy {
	counts := make(Occupancy, layout.NumBatches()+1)
	limit := space.Len()
	if limit > layout.TotalSize() {
		limit = layout.TotalSize()
	}
	if bm, ok := space.(*tas.BitmapSpace); ok {
		// Masked popcount per batch range; alignment-padding gaps between
		// batches are attributed to the preceding batch, matching BatchOf.
		pos := 0
		for j := 0; j < layout.NumBatches(); j++ {
			b := layout.Batch(j)
			if b.Offset > pos && j > 0 {
				counts[j-1] += bm.CountRange(pos, min(b.Offset, limit))
			}
			counts[j] = bm.CountRange(b.Offset, min(b.Offset+b.Size, limit))
			pos = b.Offset + b.Size
		}
		counts[layout.NumBatches()] = bm.CountRange(layout.MainSize(), limit)
		return counts
	}
	for slot := 0; slot < limit; slot++ {
		if space.Read(slot) {
			counts[layout.BatchOf(slot)]++
		}
	}
	return counts
}

// Total returns the total number of occupied slots.
func (o Occupancy) Total() int {
	sum := 0
	for _, c := range o {
		sum += c
	}
	return sum
}

// Overcrowded reports whether batch j is overcrowded under layout, i.e. its
// occupancy is at least the threshold 16·n_j from Definition 2.
func Overcrowded(layout *Layout, occ Occupancy, j int) bool {
	return occ[j] >= layout.OvercrowdedThreshold(j)
}

// BalancedUpTo reports whether none of batches 0..j are overcrowded
// (Definition 2's "balanced up to batch j").
func BalancedUpTo(layout *Layout, occ Occupancy, j int) bool {
	if j >= layout.NumBatches() {
		j = layout.NumBatches() - 1
	}
	for k := 0; k <= j; k++ {
		if Overcrowded(layout, occ, k) {
			return false
		}
	}
	return true
}

// FullyBalanced reports whether the array is balanced up to batch
// log log n − 1, the analysis's "fully balanced" predicate.
func FullyBalanced(layout *Layout, occ Occupancy) bool {
	return BalancedUpTo(layout, occ, layout.AnalysisBatches()-1)
}

// Snapshot is a human-readable view of batch occupancy at a point in an
// execution, used by the healing experiment (Figure 3) to show the
// distribution of occupied slots across batches over time.
type Snapshot struct {
	// Step is the number of completed operations (or simulator steps) when
	// the snapshot was taken.
	Step uint64
	// Counts is the per-batch occupancy (backup in the final entry).
	Counts Occupancy
	// Fractions is the per-batch fraction of slots occupied (0..1), index
	// aligned with Counts; the backup entry uses the backup size.
	Fractions []float64
	// FullyBalanced reports whether the array was fully balanced at the
	// snapshot.
	FullyBalanced bool
}

// TakeSnapshot measures space and packages the result as a Snapshot taken at
// the given step.
func TakeSnapshot(layout *Layout, space tas.Space, step uint64) Snapshot {
	occ := MeasureOccupancy(layout, space)
	fractions := make([]float64, len(occ))
	for j := 0; j < layout.NumBatches(); j++ {
		fractions[j] = float64(occ[j]) / float64(layout.Batch(j).Size)
	}
	if layout.BackupSize() > 0 {
		fractions[len(fractions)-1] = float64(occ[len(occ)-1]) / float64(layout.BackupSize())
	}
	return Snapshot{
		Step:          step,
		Counts:        occ,
		Fractions:     fractions,
		FullyBalanced: FullyBalanced(layout, occ),
	}
}

// String renders the snapshot as "step=K b0=12% b1=3% ... backup=0% balanced".
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "step=%d", s.Step)
	for j, f := range s.Fractions {
		label := fmt.Sprintf("b%d", j)
		if j == len(s.Fractions)-1 {
			label = "backup"
		}
		fmt.Fprintf(&b, " %s=%.1f%%", label, f*100)
	}
	if s.FullyBalanced {
		b.WriteString(" balanced")
	} else {
		b.WriteString(" UNBALANCED")
	}
	return b.String()
}

// DegradedStateSpec describes an artificial initial occupancy used by the
// healing experiment: Fractions[j] of batch j's slots are pre-acquired before
// traffic starts. Figure 3's initial state fills batch 0 to 25% and batch 1
// to 50% (overcrowding it).
type DegradedStateSpec struct {
	Fractions []float64
}

// Fig3InitialState returns the degraded state used in the paper's healing
// experiment: batch 0 a quarter full and batch 1 half full (overcrowded).
func Fig3InitialState() DegradedStateSpec {
	return DegradedStateSpec{Fractions: []float64{0.25, 0.5}}
}

// Apply acquires slots in space until each batch listed in the spec reaches
// the requested fill fraction. Slots are taken from the front of each batch,
// which produces the most adversarial (maximally clustered) arrangement. It
// returns the indices of the acquired slots so the caller can later release
// them or hand them to simulated processes.
func (d DegradedStateSpec) Apply(layout *Layout, space tas.Space) []int {
	var taken []int
	for j, frac := range d.Fractions {
		if j >= layout.NumBatches() || frac <= 0 {
			continue
		}
		b := layout.Batch(j)
		want := int(frac * float64(b.Size))
		if want > b.Size {
			want = b.Size
		}
		got := 0
		for slot := b.Offset; slot < b.Offset+b.Size && got < want; slot++ {
			if space.TestAndSet(slot) {
				taken = append(taken, slot)
				got++
			}
		}
	}
	return taken
}
