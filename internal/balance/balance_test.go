package balance

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/levelarray/levelarray/internal/tas"
)

func TestNewLayoutValidation(t *testing.T) {
	cases := []struct {
		name     string
		capacity int
		epsilon  float64
		wantErr  bool
	}{
		{"ok", 64, 1, false},
		{"tiny", 1, 1, false},
		{"fractional-epsilon", 128, 0.5, false},
		{"large-epsilon", 128, 3, false},
		{"zero-capacity", 0, 1, true},
		{"negative-capacity", -4, 1, true},
		{"zero-epsilon", 64, 0, true},
		{"negative-epsilon", 64, -1, true},
		{"nan-epsilon", 64, math.NaN(), true},
		{"inf-epsilon", 64, math.Inf(1), true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			l, err := NewLayout(c.capacity, c.epsilon)
			if c.wantErr {
				if err == nil {
					t.Fatal("expected error")
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if l.Capacity() != c.capacity || l.Epsilon() != c.epsilon {
				t.Fatalf("layout does not echo parameters: %+v", l)
			}
		})
	}
}

func TestMustNewLayoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNewLayout(0, 1)
}

func TestPaperLayoutGeometry(t *testing.T) {
	// With ε = 1 and n a power of two, the paper's construction gives
	// B0 = 3n/2 and Bi = n/2^{i+1}.
	const n = 1024
	l := MustNewLayout(n, DefaultEpsilon)

	b0 := l.Batch(0)
	if b0.Offset != 0 || b0.Size != 3*n/2 {
		t.Fatalf("B0 = %+v, want offset 0 size %d", b0, 3*n/2)
	}
	for i := 1; i < l.NumBatches(); i++ {
		want := n / (1 << uint(i+1))
		if got := l.Batch(i).Size; got != want {
			t.Fatalf("B%d size = %d, want %d", i, got, want)
		}
	}
	if l.MainSize() > 2*n {
		t.Fatalf("main size %d exceeds 2n = %d", l.MainSize(), 2*n)
	}
	if l.BackupSize() != n {
		t.Fatalf("backup size %d, want %d", l.BackupSize(), n)
	}
	if l.TotalSize() != l.MainSize()+n {
		t.Fatalf("total size %d inconsistent", l.TotalSize())
	}
	// Last batch has at least one slot and the next would have none.
	last := l.Batch(l.NumBatches() - 1)
	if last.Size < 1 {
		t.Fatalf("last batch empty: %+v", last)
	}
}

func TestBatchesAreOrderedAndWordAligned(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 100, 1000, 1 << 14} {
		for _, eps := range []float64{0.5, 1, 2} {
			l := MustNewLayout(n, eps)
			offset := 0
			covered := 0
			padding := 0
			wordBatches := 0
			for i := 0; i < l.NumBatches(); i++ {
				b := l.Batch(i)
				if b.Index != i {
					t.Fatalf("n=%d eps=%v: batch %d has index %d", n, eps, i, b.Index)
				}
				if b.Offset < offset {
					t.Fatalf("n=%d eps=%v: batch %d offset %d overlaps previous end %d", n, eps, i, b.Offset, offset)
				}
				if b.Size < 1 {
					t.Fatalf("n=%d eps=%v: batch %d empty", n, eps, i)
				}
				// Word-sized batches start on a bitmap-word boundary; sub-word
				// batches are packed densely (no gap before them).
				if b.Size >= WordSlots {
					wordBatches++
					if b.Offset%WordSlots != 0 {
						t.Fatalf("n=%d eps=%v: batch %d (size %d) offset %d not word-aligned", n, eps, i, b.Size, b.Offset)
					}
				} else if b.Offset != offset {
					t.Fatalf("n=%d eps=%v: sub-word batch %d padded (offset %d, want %d)", n, eps, i, b.Offset, offset)
				}
				padding += b.Offset - offset
				covered += b.Size
				offset = b.Offset + b.Size
			}
			if offset != l.MainSize() {
				t.Fatalf("n=%d eps=%v: batches end at %d, main size %d", n, eps, offset, l.MainSize())
			}
			if padding != l.PaddingSlots() {
				t.Fatalf("n=%d eps=%v: measured padding %d, PaddingSlots() %d", n, eps, padding, l.PaddingSlots())
			}
			if covered+padding != l.MainSize() {
				t.Fatalf("n=%d eps=%v: sizes %d + padding %d != main size %d", n, eps, covered, padding, l.MainSize())
			}
			// ε-accounting with alignment: the batches themselves stay within
			// the paper's (1+ε)n bound; the alignment may add at most one
			// word's worth of padding per word-sized batch.
			if float64(covered) > (1+eps)*float64(n)+1 {
				t.Fatalf("n=%d eps=%v: batch slots %d exceed (1+eps)n", n, eps, covered)
			}
			if padding > WordSlots*wordBatches {
				t.Fatalf("n=%d eps=%v: padding %d exceeds %d word-sized batches worth", n, eps, padding, wordBatches)
			}
		}
	}
}

func TestBatchesCopy(t *testing.T) {
	l := MustNewLayout(64, 1)
	batches := l.Batches()
	batches[0].Size = -1
	if l.Batch(0).Size == -1 {
		t.Fatal("Batches exposed internal storage")
	}
}

func TestBatchOf(t *testing.T) {
	l := MustNewLayout(256, 1)
	for i := 0; i < l.NumBatches(); i++ {
		b := l.Batch(i)
		if got := l.BatchOf(b.Offset); got != i {
			t.Fatalf("BatchOf(first slot of %d) = %d", i, got)
		}
		if got := l.BatchOf(b.Offset + b.Size - 1); got != i {
			t.Fatalf("BatchOf(last slot of %d) = %d", i, got)
		}
	}
	if got := l.BatchOf(l.MainSize()); got != l.NumBatches() {
		t.Fatalf("BatchOf(first backup slot) = %d, want %d", got, l.NumBatches())
	}
	if got := l.BatchOf(l.TotalSize() - 1); got != l.NumBatches() {
		t.Fatalf("BatchOf(last backup slot) = %d, want %d", got, l.NumBatches())
	}
}

func TestBatchOfPanicsOutOfRange(t *testing.T) {
	l := MustNewLayout(16, 1)
	for _, slot := range []int{-1, l.TotalSize()} {
		slot := slot
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BatchOf(%d) did not panic", slot)
				}
			}()
			l.BatchOf(slot)
		}()
	}
}

func TestQuickBatchOfConsistent(t *testing.T) {
	prop := func(nRaw uint16, slotRaw uint32) bool {
		n := int(nRaw%4096) + 1
		l := MustNewLayout(n, 1)
		slot := int(slotRaw) % l.TotalSize()
		j := l.BatchOf(slot)
		if slot >= l.MainSize() {
			return j == l.NumBatches()
		}
		// Slots inside a batch map to that batch; alignment-padding slots map
		// to the nearest preceding batch.
		b := l.Batch(j)
		if slot >= b.Offset && slot < b.Offset+b.Size {
			return true
		}
		if slot < b.Offset+b.Size {
			return false
		}
		return j+1 >= l.NumBatches() || slot < l.Batch(j+1).Offset
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalysisBatches(t *testing.T) {
	cases := map[int]int{
		2:    1,
		4:    1,
		16:   2,
		256:  3,
		1024: 4, // ceil(log2(log2(1024))) = ceil(log2(10)) = 4
	}
	for n, want := range cases {
		l := MustNewLayout(n, 1)
		got := l.AnalysisBatches()
		if got != want && got != l.NumBatches() {
			t.Errorf("AnalysisBatches(n=%d) = %d, want %d (or clamped to %d)",
				n, got, want, l.NumBatches())
		}
		if got < 1 || got > l.NumBatches() {
			t.Errorf("AnalysisBatches(n=%d) = %d outside [1, %d]", n, got, l.NumBatches())
		}
	}
}

func TestReachProbabilityTargets(t *testing.T) {
	l := MustNewLayout(1<<16, 1)
	if got := l.ReachProbabilityTarget(0); got != 1 {
		t.Fatalf("pi_0 = %v, want 1", got)
	}
	// pi_1 = 1/2^7, pi_2 = 1/2^9, pi_3 = 1/2^13.
	cases := map[int]float64{1: 1.0 / 128, 2: 1.0 / 512, 3: 1.0 / 8192}
	for j, want := range cases {
		if got := l.ReachProbabilityTarget(j); math.Abs(got-want) > 1e-15 {
			t.Errorf("pi_%d = %v, want %v", j, got, want)
		}
	}
	// Monotonically non-increasing and doubly-exponentially decreasing.
	prev := 1.0
	for j := 1; j < 8; j++ {
		cur := l.ReachProbabilityTarget(j)
		if cur >= prev {
			t.Fatalf("pi_%d = %v not decreasing (prev %v)", j, cur, prev)
		}
		prev = cur
	}
}

func TestOccupancyTarget(t *testing.T) {
	const n = 1 << 16
	l := MustNewLayout(n, 1)
	if got := l.OccupancyTarget(0); got != n {
		t.Fatalf("n_0 = %v, want %d", got, n)
	}
	if got, want := l.OccupancyTarget(1), float64(n)/128; math.Abs(got-want) > 1e-9 {
		t.Fatalf("n_1 = %v, want %v", got, want)
	}
}

func TestOvercrowdedThreshold(t *testing.T) {
	const n = 1 << 16
	l := MustNewLayout(n, 1)
	// Batch 0 can never be overcrowded: threshold exceeds its size.
	if got := l.OvercrowdedThreshold(0); got != l.Batch(0).Size+1 {
		t.Fatalf("threshold(0) = %d, want %d", got, l.Batch(0).Size+1)
	}
	// For j >= 1 the threshold is 16·n_j = n/2^{2^j+1}.
	cases := map[int]int{1: n / 8, 2: n / 32, 3: n / 512}
	for j, want := range cases {
		if got := l.OvercrowdedThreshold(j); got != want {
			t.Errorf("threshold(%d) = %d, want %d", j, got, want)
		}
	}
	// Thresholds never drop below 1 even for deep batches of tiny arrays.
	small := MustNewLayout(8, 1)
	for j := 1; j < small.NumBatches(); j++ {
		if small.OvercrowdedThreshold(j) < 1 {
			t.Fatalf("threshold(%d) below 1 for n=8", j)
		}
	}
}

func TestOvercrowdedThresholdPanics(t *testing.T) {
	l := MustNewLayout(64, 1)
	for _, j := range []int{-1, l.NumBatches()} {
		j := j
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("OvercrowdedThreshold(%d) did not panic", j)
				}
			}()
			l.OvercrowdedThreshold(j)
		}()
	}
}

func TestMeasureOccupancyAndPredicates(t *testing.T) {
	const n = 256
	l := MustNewLayout(n, 1)
	space := tas.NewAtomicSpace(l.TotalSize())

	// Occupy 10 slots in batch 0, enough slots in batch 1 to overcrowd it,
	// and 2 slots in the backup region.
	b0 := l.Batch(0)
	for i := 0; i < 10; i++ {
		space.TestAndSet(b0.Offset + i)
	}
	b1 := l.Batch(1)
	threshold1 := l.OvercrowdedThreshold(1)
	for i := 0; i < threshold1; i++ {
		space.TestAndSet(b1.Offset + i)
	}
	space.TestAndSet(l.MainSize())
	space.TestAndSet(l.TotalSize() - 1)

	occ := MeasureOccupancy(l, space)
	if occ[0] != 10 {
		t.Fatalf("occ[0] = %d, want 10", occ[0])
	}
	if occ[1] != threshold1 {
		t.Fatalf("occ[1] = %d, want %d", occ[1], threshold1)
	}
	if occ[l.NumBatches()] != 2 {
		t.Fatalf("backup occupancy = %d, want 2", occ[l.NumBatches()])
	}
	if occ.Total() != 12+threshold1 {
		t.Fatalf("Total = %d, want %d", occ.Total(), 12+threshold1)
	}

	if Overcrowded(l, occ, 0) {
		t.Fatal("batch 0 reported overcrowded")
	}
	if !Overcrowded(l, occ, 1) {
		t.Fatal("batch 1 not reported overcrowded at threshold")
	}
	if BalancedUpTo(l, occ, 1) {
		t.Fatal("BalancedUpTo(1) true despite overcrowded batch 1")
	}
	if !BalancedUpTo(l, occ, 0) {
		t.Fatal("BalancedUpTo(0) false")
	}
	if FullyBalanced(l, occ) {
		t.Fatal("FullyBalanced true despite overcrowded batch 1")
	}

	// Releasing one slot in batch 1 drops it below the threshold.
	space.Reset(b1.Offset)
	occ = MeasureOccupancy(l, space)
	if Overcrowded(l, occ, 1) {
		t.Fatal("batch 1 still overcrowded below threshold")
	}
	if !FullyBalanced(l, occ) {
		t.Fatal("array not fully balanced after rebalancing batch 1")
	}
}

func TestBalancedUpToClampsIndex(t *testing.T) {
	l := MustNewLayout(64, 1)
	space := tas.NewAtomicSpace(l.TotalSize())
	occ := MeasureOccupancy(l, space)
	if !BalancedUpTo(l, occ, l.NumBatches()+5) {
		t.Fatal("BalancedUpTo with large index should clamp and succeed on empty array")
	}
}

func TestMeasureOccupancyMainOnlySpace(t *testing.T) {
	l := MustNewLayout(128, 1)
	space := tas.NewAtomicSpace(l.MainSize())
	space.TestAndSet(0)
	occ := MeasureOccupancy(l, space)
	if occ[0] != 1 {
		t.Fatalf("occ[0] = %d, want 1", occ[0])
	}
	if occ[l.NumBatches()] != 0 {
		t.Fatal("backup occupancy nonzero for main-only space")
	}
}

func TestTakeSnapshot(t *testing.T) {
	const n = 128
	l := MustNewLayout(n, 1)
	space := tas.NewAtomicSpace(l.TotalSize())
	b0 := l.Batch(0)
	for i := 0; i < b0.Size/2; i++ {
		space.TestAndSet(b0.Offset + i)
	}
	snap := TakeSnapshot(l, space, 4000)
	if snap.Step != 4000 {
		t.Fatalf("Step = %d", snap.Step)
	}
	if math.Abs(snap.Fractions[0]-0.5) > 0.01 {
		t.Fatalf("batch 0 fraction = %v, want ~0.5", snap.Fractions[0])
	}
	if !snap.FullyBalanced {
		t.Fatal("half-full batch 0 should still be balanced")
	}
	out := snap.String()
	for _, want := range []string{"step=4000", "b0=", "backup=", "balanced"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Snapshot.String() = %q missing %q", out, want)
		}
	}
}

func TestDegradedStateSpec(t *testing.T) {
	const n = 256
	l := MustNewLayout(n, 1)
	space := tas.NewAtomicSpace(l.TotalSize())
	spec := Fig3InitialState()
	taken := spec.Apply(l, space)

	occ := MeasureOccupancy(l, space)
	wantB0 := int(0.25 * float64(l.Batch(0).Size))
	wantB1 := int(0.5 * float64(l.Batch(1).Size))
	if occ[0] != wantB0 {
		t.Fatalf("batch 0 occupancy = %d, want %d", occ[0], wantB0)
	}
	if occ[1] != wantB1 {
		t.Fatalf("batch 1 occupancy = %d, want %d", occ[1], wantB1)
	}
	if len(taken) != wantB0+wantB1 {
		t.Fatalf("len(taken) = %d, want %d", len(taken), wantB0+wantB1)
	}
	// The Figure 3 initial state must actually be unbalanced (batch 1
	// overcrowded), otherwise the healing experiment is vacuous.
	if FullyBalanced(l, occ) {
		t.Fatal("Fig3 initial state is not unbalanced")
	}
	snap := TakeSnapshot(l, space, 0)
	if !strings.Contains(snap.String(), "UNBALANCED") {
		t.Fatalf("snapshot should report UNBALANCED: %s", snap)
	}

	// Releasing everything returns the array to balanced.
	for _, slot := range taken {
		space.Reset(slot)
	}
	if !FullyBalanced(l, MeasureOccupancy(l, space)) {
		t.Fatal("array not balanced after releasing degraded state")
	}
}

func TestDegradedStateSpecIgnoresExcessBatches(t *testing.T) {
	l := MustNewLayout(4, 1)
	space := tas.NewAtomicSpace(l.TotalSize())
	spec := DegradedStateSpec{Fractions: []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5}}
	taken := spec.Apply(l, space)
	if len(taken) > l.MainSize() {
		t.Fatalf("took %d slots from a %d-slot main array", len(taken), l.MainSize())
	}
}

// Property: for arbitrary occupancy patterns, FullyBalanced is equivalent to
// no analysis batch being overcrowded.
func TestQuickFullyBalancedDefinition(t *testing.T) {
	l := MustNewLayout(512, 1)
	prop := func(slots []uint16) bool {
		space := tas.NewAtomicSpace(l.TotalSize())
		for _, s := range slots {
			space.TestAndSet(int(s) % l.TotalSize())
		}
		occ := MeasureOccupancy(l, space)
		want := true
		for j := 0; j < l.AnalysisBatches(); j++ {
			if Overcrowded(l, occ, j) {
				want = false
				break
			}
		}
		return FullyBalanced(l, occ) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
