package lease

import (
	"errors"
	"fmt"
	"time"

	"github.com/levelarray/levelarray/internal/wal"
)

// Journal is the narrow durability interface a Manager journals through,
// implemented by *wal.Store. It is an interface so tests can inject failing
// or recording journals without touching a filesystem.
type Journal interface {
	// Append journals one lease transition. Under a durable sync policy it
	// returns only once the record is on stable storage; an error means the
	// operation must not be acknowledged.
	Append(op wal.Op, name uint32, token uint64, deadline int64) error
	// AppendBatch journals several transitions with one durability wait.
	AppendBatch(recs []wal.Record) error
	// BeginCheckpoint seals the log and returns the LSN the snapshot covers.
	// The Manager calls it under its checkpoint write barrier.
	BeginCheckpoint() (uint64, error)
	// CompleteCheckpoint persists the snapshot and prunes covered segments.
	CompleteCheckpoint(snap *wal.Snapshot) error
	// Recovered returns the snapshot and log tail Open reconstructed.
	Recovered() (*wal.Snapshot, []wal.Record)
}

// ErrNotAdoptable is returned by Restore when the underlying array's handles
// cannot re-adopt specific names (no Adopt method), which durable recovery
// requires.
var ErrNotAdoptable = errors.New("lease: array handles do not support Adopt; cannot restore from journal")

// adopter is the restore-path primitive: core.Handle and shard.Handle both
// claim one specific name with a single test-and-set.
type adopter interface {
	Adopt(name int) error
}

// tokenRestoreSlack is added to the recovered token-sequence high-water mark
// before restarting the mint sequence. Under relaxed sync policies a crash
// can lose the trailing records of tokens that were already handed out; the
// slack keeps even those unrecorded tokens unique against post-restart mints.
const tokenRestoreSlack = 1 << 20

// RestoreStats reports what Restore rebuilt.
type RestoreStats struct {
	// Sessions is the number of leases rebuilt as live.
	Sessions int
	// Expired is the number of recovered sessions whose deadline had already
	// lapsed; they are rebuilt and handed straight to the expirer so the
	// array observes a well-formed Get/Free history for them too.
	Expired int
	// OrphanWords counts bits set in the snapshot's bitmap words with no
	// matching session — registrations that bypassed their bookkeeping
	// before the crash. They are not restored (the crash collected them).
	OrphanWords int
	// TokenFloor is the restarted token-sequence floor (includes slack).
	TokenFloor uint64
	// Records is the number of journal tail records folded in.
	Records int
}

// Restore rebuilds the manager's state from its journal's recovered snapshot
// and log tail: every surviving session is re-adopted on the underlying
// array (a specific-name test-and-set, excluded from probe statistics), its
// entry and timer-wheel record are rebuilt from the persisted deadline, and
// the token-mint sequence is restarted above the recovered high-water mark.
//
// It must be called once, after NewManager and before Start or any
// operation. A manager without a journal restores nothing.
func (m *Manager) Restore() (RestoreStats, error) {
	if m.journal == nil {
		return RestoreStats{}, nil
	}
	snap, tail := m.journal.Recovered()
	return m.RestoreState(snap, tail)
}

// RestoreState rebuilds the manager from an explicit snapshot and log tail
// rather than the journal's own recovery — the failover path, where an
// adopting node fences the failed owner's directory, reads its state, and
// folds it into a fresh manager (whose own journal then checkpoints the
// imported sessions). The same preconditions as Restore apply: call once,
// before Start or any operation.
func (m *Manager) RestoreState(snap *wal.Snapshot, tail []wal.Record) (RestoreStats, error) {
	var st RestoreStats
	st.Records = len(tail)
	sessions, maxToken := wal.Fold(snap, tail)

	if snap != nil {
		st.OrphanWords = countOrphanWords(snap, sessions)
	}

	// Token floor: above everything ever observed on disk, above the
	// snapshot's recorded mint position, with slack for tokens lost to a
	// relaxed sync policy — and never below the configured base (the cluster
	// derives bases from epochs; a restored node keeps its epoch's space).
	floor := maxToken >> TokenHandleBits
	if snap != nil && snap.TokenSeq > floor {
		floor = snap.TokenSeq
	}
	floor += tokenRestoreSlack
	if floor < m.cfg.TokenSeqBase {
		floor = m.cfg.TokenSeqBase
	}
	if floor > m.tokenSeq.Load() {
		m.tokenSeq.Store(floor)
	}
	st.TokenFloor = floor

	nowTick := m.now().UnixNano() / int64(m.cfg.TickInterval)
	for _, sess := range sessions {
		name := int(sess.Name)
		if name < 0 || name >= len(m.entries) {
			return st, fmt.Errorf("lease: recovered session name %d outside namespace [0, %d)", name, len(m.entries))
		}
		h := m.getHandle()
		ad, ok := h.(adopter)
		if !ok {
			m.putHandle(h)
			return st, ErrNotAdoptable
		}
		if err := ad.Adopt(name); err != nil {
			m.putHandle(h)
			return st, fmt.Errorf("lease: re-adopt name %d: %w", name, err)
		}
		e := &m.entries[name]
		e.active = true
		e.token = sess.Token
		e.deadline = sess.Deadline
		e.handle = h
		e.wheelTick = 0
		if sess.Deadline != 0 {
			// Rebuild the timer record. A deadline that lapsed while the
			// process was down hashes to a tick the expirer will never scan
			// again, so park it one tick ahead: the first pass reaps it
			// (expireBucket re-checks due-ness against the entry's deadline).
			tick := m.tickOf(sess.Deadline)
			if tick <= nowTick {
				tick = nowTick + 1
				st.Expired++
			}
			e.wheelTick = tick
			b := &m.wheel[int(tick%int64(len(m.wheel)))]
			b.items = append(b.items, wheelItem{name: name, token: sess.Token})
		}
		st.Sessions++
		m.active.Add(1)
	}
	m.restored.Store(uint64(st.Sessions))
	return st, nil
}

// countOrphanWords counts bits set in the snapshot's concatenated bitmap
// words that no recovered session accounts for. Purely diagnostic: orphan
// bits are simply not re-adopted, so a crash doubles as an orphan collection.
func countOrphanWords(snap *wal.Snapshot, sessions []wal.Session) int {
	var setBits int
	for _, w := range snap.Words {
		for ; w != 0; w &= w - 1 {
			setBits++
		}
	}
	if setBits <= len(sessions) {
		return 0
	}
	return setBits - len(sessions)
}

// Restored returns the number of sessions the last Restore rebuilt.
func (m *Manager) Restored() uint64 { return m.restored.Load() }

// Checkpoint captures a consistent snapshot of the manager's lease state and
// hands it to the journal: it takes the checkpoint write barrier (excluding
// every journaling mutation), seals the log at a cut LSN, captures the
// session table, bitmap words and token high-water mark at that same point,
// then releases the barrier and persists the snapshot in the caller's
// goroutine. After it returns, the journal's replayable state starts at the
// snapshot. Clean marks a graceful-shutdown snapshot (replay skips the tail).
func (m *Manager) Checkpoint(partition uint32, epoch uint64, clean bool) error {
	if m.journal == nil {
		return nil
	}
	m.journalMu.Lock()
	lsn, err := m.journal.BeginCheckpoint()
	if err != nil {
		m.journalMu.Unlock()
		return err
	}
	snap := &wal.Snapshot{
		Partition: partition,
		Epoch:     epoch,
		LastLSN:   lsn,
		TokenSeq:  m.tokenSeq.Load(),
		Clean:     clean,
	}
	for name := range m.entries {
		e := &m.entries[name]
		e.mu.Lock()
		if e.active {
			snap.Sessions = append(snap.Sessions, wal.Session{
				Name:     uint32(name),
				Token:    e.token,
				Deadline: e.deadline,
			})
		}
		e.mu.Unlock()
	}
	for _, v := range m.views {
		snap.Words = append(snap.Words, v.space.SnapshotWords()...)
	}
	m.journalMu.Unlock()
	return m.journal.CompleteCheckpoint(snap)
}

// ExportState captures a consistent snapshot of the manager's live state and
// returns it — the ship half of a live partition migration. It is
// Checkpoint's capture under the same write barrier (excluding every
// journaling mutation), but it does not touch the journal: no log seal, no
// persisted snapshot, no truncation. The caller must have fenced the
// partition against new grants first (the cluster holds its table write lock
// and marks the partition migrating); expirations may still race the export,
// which is safe — the importer re-expires any lapsed session itself, and an
// expired name is never re-granted by the fenced source. Works on journal-
// less managers too (the barrier is then only against other exports).
func (m *Manager) ExportState(partition uint32, epoch uint64) *wal.Snapshot {
	m.journalMu.Lock()
	defer m.journalMu.Unlock()
	snap := &wal.Snapshot{
		Partition: partition,
		Epoch:     epoch,
		TokenSeq:  m.tokenSeq.Load(),
		Clean:     true,
	}
	for name := range m.entries {
		e := &m.entries[name]
		e.mu.Lock()
		if e.active {
			snap.Sessions = append(snap.Sessions, wal.Session{
				Name:     uint32(name),
				Token:    e.token,
				Deadline: e.deadline,
			})
		}
		e.mu.Unlock()
	}
	for _, v := range m.views {
		snap.Words = append(snap.Words, v.space.SnapshotWords()...)
	}
	return snap
}

// checkpointLoop drives periodic checkpoints. meta supplies the partition id
// and current epoch stamped into each snapshot.
type checkpointLoop struct {
	stop chan struct{}
	done chan struct{}
}

// StartCheckpoints launches a background loop checkpointing every interval.
// The returned stop function halts the loop and waits for an in-flight
// checkpoint to finish; it does not write a final snapshot (the shutdown
// path calls Checkpoint with clean=true itself). No-op without a journal.
func (m *Manager) StartCheckpoints(every time.Duration, meta func() (partition uint32, epoch uint64), onErr func(error)) (stop func()) {
	if m.journal == nil || every <= 0 {
		return func() {}
	}
	l := &checkpointLoop{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(l.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-l.stop:
				return
			case <-t.C:
				p, ep := meta()
				if err := m.Checkpoint(p, ep, false); err != nil && onErr != nil {
					onErr(err)
				}
			}
		}
	}()
	return func() {
		close(l.stop)
		<-l.done
	}
}
