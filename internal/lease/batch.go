package lease

import (
	"errors"
	"fmt"
	"time"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/wal"
)

// Ref addresses one held lease in a batch operation.
type Ref struct {
	Name  int
	Token uint64
}

// RenewOutcome is the per-lease result of RenewAll.
type RenewOutcome struct {
	// Err is nil on success, else ErrNotLeased or ErrStaleToken.
	Err error
	// Deadline is the renewed deadline (zero time = infinite) when Err is nil.
	Deadline time.Time
}

// AcquireN grants up to n leases with one shared TTL in a single pass:
// one clock read and one deadline for the whole batch, and — because every
// granted lease lands on the same deadline tick — one wheel-bucket lock for
// all of the timer records instead of one per lease. Grants stop early at
// the first registration failure (typically activity.ErrFull).
//
// It returns the granted prefix appended to dst. The error is non-nil only
// when nothing was granted: a partially filled batch is a success whose
// length says how much namespace was left.
func (m *Manager) AcquireN(n int, ttl time.Duration, dst []Lease) ([]Lease, error) {
	if m.closed.Load() {
		return dst, ErrClosed
	}
	if n <= 0 {
		return dst, nil
	}
	ttl, err := m.clampTTL(ttl)
	if err != nil {
		return dst, err
	}
	var deadline int64
	if ttl > 0 {
		deadline = m.now().Add(ttl).UnixNano()
	}

	base := len(dst)
	var firstErr error
	var recs []wal.Record
	m.journalRLock()
	for i := 0; i < n; i++ {
		h := m.getHandle()
		m.pendingGets.Add(1)
		name, err := h.Get()
		if err != nil {
			m.pendingGets.Add(-1)
			m.putHandle(h)
			if errors.Is(err, activity.ErrFull) {
				m.failedAcquires.Add(1)
			}
			firstErr = err
			break
		}
		token := m.mintToken(h)
		e := &m.entries[name]
		e.mu.Lock()
		e.active = true
		e.token = token
		e.deadline = deadline
		e.wheelTick = 0
		if deadline != 0 {
			e.wheelTick = m.tickOf(deadline)
		}
		e.handle = h
		e.mu.Unlock()
		m.pendingGets.Add(-1)
		if m.journal != nil {
			recs = append(recs, wal.Record{Op: wal.OpAcquire, Name: uint32(name), Token: token, Deadline: deadline})
		}
		dst = append(dst, Lease{Name: name, Token: token, Deadline: fromNanos(deadline)})
	}
	if m.journal != nil && len(recs) > 0 {
		// One group commit covers the whole batch. On failure the grants are
		// rolled back before any token escapes: nobody but this goroutine
		// knows them, so the token re-check below is purely defensive.
		if err := m.journal.AppendBatch(recs); err != nil {
			for _, l := range dst[base:] {
				e := &m.entries[l.Name]
				e.mu.Lock()
				if e.active && e.token == l.Token {
					h := e.handle
					e.active = false
					e.wheelTick = 0
					e.handle = nil
					_ = h.Free()
					m.putHandle(h)
				}
				e.mu.Unlock()
			}
			m.journalRUnlock()
			return dst[:base], fmt.Errorf("lease: journal acquire batch: %w", err)
		}
	}
	m.journalRUnlock()
	granted := dst[base:]
	if deadline != 0 && len(granted) > 0 {
		m.wheelInsertBatch(deadline, granted)
	}
	m.acquires.Add(uint64(len(granted)))
	m.active.Add(int64(len(granted)))
	if len(granted) == 0 && firstErr != nil {
		return dst, firstErr
	}
	return dst, nil
}

// wheelInsertBatch appends one timer record per lease into the single bucket
// of the shared deadline tick, locking it once.
func (m *Manager) wheelInsertBatch(deadlineNanos int64, leases []Lease) {
	b := &m.wheel[int(m.tickOf(deadlineNanos)%int64(len(m.wheel)))]
	b.mu.Lock()
	for _, l := range leases {
		b.items = append(b.items, wheelItem{name: l.Name, token: l.Token})
	}
	b.mu.Unlock()
}

// RenewAll extends every lease in refs to one shared deadline in a single
// pass: one clock read for the batch, per-entry fencing exactly as Renew,
// and the wheel records that do need re-inserting batched into one bucket
// lock. Outcomes are reported per lease in the returned slice (appended to
// dst, index-aligned with refs); a stale or missing lease does not stop the
// rest of the batch. The error is non-nil only for whole-batch failures
// (ErrClosed, ErrTTLTooLong).
func (m *Manager) RenewAll(refs []Ref, ttl time.Duration, dst []RenewOutcome) ([]RenewOutcome, error) {
	if m.closed.Load() {
		return dst, ErrClosed
	}
	ttl, err := m.clampTTL(ttl)
	if err != nil {
		return dst, err
	}
	var deadline int64
	if ttl > 0 {
		deadline = m.now().Add(ttl).UnixNano()
	}
	deadlineTime := fromNanos(deadline)

	// Leases whose live wheel record does not cover the new deadline need a
	// fresh one; collect them and insert under one bucket lock (every record
	// in the batch shares the deadline, hence the bucket).
	var inserts []Lease
	var recs []wal.Record
	var renewed uint64
	m.journalRLock()
	for _, ref := range refs {
		if ref.Name < 0 || ref.Name >= len(m.entries) {
			m.renewRaces.Add(1)
			dst = append(dst, RenewOutcome{Err: ErrNotLeased})
			continue
		}
		e := &m.entries[ref.Name]
		e.mu.Lock()
		if !e.active {
			e.mu.Unlock()
			m.renewRaces.Add(1)
			dst = append(dst, RenewOutcome{Err: ErrNotLeased})
			continue
		}
		if e.token != ref.Token {
			e.mu.Unlock()
			m.renewRaces.Add(1)
			dst = append(dst, RenewOutcome{Err: ErrStaleToken})
			continue
		}
		e.deadline = deadline
		// Same skip rule as Renew: an existing record at an earlier-or-equal
		// tick re-hashes to the then-current deadline when it fires.
		if deadline != 0 && (e.wheelTick == 0 || m.tickOf(deadline) < e.wheelTick) {
			e.wheelTick = m.tickOf(deadline)
			inserts = append(inserts, Lease{Name: ref.Name, Token: ref.Token})
		}
		e.mu.Unlock()
		if m.journal != nil {
			recs = append(recs, wal.Record{Op: wal.OpRenew, Name: uint32(ref.Name), Token: ref.Token, Deadline: deadline})
		}
		renewed++
		dst = append(dst, RenewOutcome{Deadline: deadlineTime})
	}
	if m.journal != nil && len(recs) > 0 {
		// One group commit for the batch, durable before any outcome is
		// acked. On failure the batch reports a whole-batch error; the
		// in-memory extensions stand, which only lengthens the leases
		// relative to what the (unacked) callers believe — the safe side.
		if err := m.journal.AppendBatch(recs); err != nil {
			m.journalRUnlock()
			return dst, fmt.Errorf("lease: journal renew batch: %w", err)
		}
	}
	m.journalRUnlock()
	if len(inserts) > 0 {
		m.wheelInsertBatch(deadline, inserts)
	}
	m.renews.Add(renewed)
	return dst, nil
}
