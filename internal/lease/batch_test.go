package lease

import (
	"errors"
	"testing"

	"github.com/levelarray/levelarray/internal/activity"
)

func TestAcquireNDistinctAndFenced(t *testing.T) {
	m, _ := newTestManager(t, 16)
	ttl := 5 * testTick
	leases, err := m.AcquireN(16, ttl, nil)
	if err != nil {
		t.Fatalf("AcquireN: %v", err)
	}
	if len(leases) != 16 {
		t.Fatalf("granted %d, want 16", len(leases))
	}
	if got := m.Active(); got != 16 {
		t.Fatalf("Active = %d, want 16", got)
	}
	seen := make(map[int]bool, len(leases))
	for _, l := range leases {
		if seen[l.Name] {
			t.Fatalf("name %d granted twice in one batch", l.Name)
		}
		seen[l.Name] = true
		if l.Token == 0 {
			t.Fatalf("name %d has zero token", l.Name)
		}
		if l.Deadline.IsZero() {
			t.Fatalf("name %d has no deadline for finite ttl", l.Name)
		}
	}
	// Each grant is individually fenced: the right token releases, a wrong
	// one does not.
	if err := m.Release(leases[0].Name, leases[0].Token+1); !errors.Is(err, ErrStaleToken) {
		t.Fatalf("Release with wrong token = %v, want ErrStaleToken", err)
	}
	if err := m.Release(leases[0].Name, leases[0].Token); err != nil {
		t.Fatalf("Release: %v", err)
	}
}

func TestAcquireNPartialAtCapacity(t *testing.T) {
	m, _ := newTestManager(t, 8)
	// Asking beyond the namespace is a success that grants what was left.
	leases, err := m.AcquireN(m.Size()+8, 0, nil)
	if err != nil {
		t.Fatalf("AcquireN over capacity: %v", err)
	}
	if len(leases) != m.Size() {
		t.Fatalf("granted %d, want the full namespace %d", len(leases), m.Size())
	}
	// Nothing left: now the batch fails with the registration error.
	if _, err := m.AcquireN(1, 0, nil); !errors.Is(err, activity.ErrFull) {
		t.Fatalf("AcquireN on full manager = %v, want ErrFull", err)
	}
	// n <= 0 is a no-op.
	if out, err := m.AcquireN(0, 0, nil); err != nil || len(out) != 0 {
		t.Fatalf("AcquireN(0) = %v, %v", out, err)
	}
}

func TestAcquireNBatchExpires(t *testing.T) {
	m, clk := newTestManager(t, 16)
	ttl := 3 * testTick
	leases, err := m.AcquireN(10, ttl, nil)
	if err != nil || len(leases) != 10 {
		t.Fatalf("AcquireN: %d, %v", len(leases), err)
	}
	clk.advance(2 * testTick)
	m.Tick()
	if got := m.Active(); got != 10 {
		t.Fatalf("Active before deadline = %d, want 10", got)
	}
	clk.advance(2 * testTick)
	m.Tick()
	if got := m.Active(); got != 0 {
		t.Fatalf("Active after deadline tick = %d, want 0: the shared wheel record must cover every grant", got)
	}
}

func TestRenewAllExtendsEveryDeadline(t *testing.T) {
	m, clk := newTestManager(t, 16)
	ttl := 3 * testTick
	leases, err := m.AcquireN(8, ttl, nil)
	if err != nil || len(leases) != 8 {
		t.Fatalf("AcquireN: %d, %v", len(leases), err)
	}
	refs := make([]Ref, len(leases))
	for i, l := range leases {
		refs[i] = Ref{Name: l.Name, Token: l.Token}
	}

	clk.advance(2 * testTick)
	outcomes, err := m.RenewAll(refs, ttl, nil)
	if err != nil {
		t.Fatalf("RenewAll: %v", err)
	}
	if len(outcomes) != len(refs) {
		t.Fatalf("outcomes %d, want %d", len(outcomes), len(refs))
	}
	want := clk.now().Add(ttl)
	for i, oc := range outcomes {
		if oc.Err != nil {
			t.Fatalf("outcome %d: %v", i, oc.Err)
		}
		if !oc.Deadline.Equal(want) {
			t.Fatalf("outcome %d deadline %v, want %v", i, oc.Deadline, want)
		}
	}

	// The original deadline passes: every renewed lease must survive it.
	clk.advance(2 * testTick)
	m.Tick()
	if got := m.Active(); got != 8 {
		t.Fatalf("Active after original deadline = %d, want 8 (renewal must cover every lease)", got)
	}
	// The renewed deadline passes: all gone.
	clk.advance(4 * testTick)
	m.Tick()
	if got := m.Active(); got != 0 {
		t.Fatalf("Active after renewed deadline = %d, want 0", got)
	}
}

func TestRenewAllPerItemFencing(t *testing.T) {
	m, _ := newTestManager(t, 16)
	ttl := 5 * testTick
	leases, err := m.AcquireN(3, ttl, nil)
	if err != nil || len(leases) != 3 {
		t.Fatalf("AcquireN: %d, %v", len(leases), err)
	}
	refs := []Ref{
		{Name: leases[0].Name, Token: leases[0].Token},     // good
		{Name: leases[1].Name, Token: leases[1].Token + 1}, // stale token
		{Name: m.Size() + 5, Token: 1},                     // outside the namespace
		{Name: leases[2].Name, Token: leases[2].Token},     // good
	}
	outcomes, err := m.RenewAll(refs, ttl, nil)
	if err != nil {
		t.Fatalf("RenewAll: %v", err)
	}
	if len(outcomes) != 4 {
		t.Fatalf("outcomes %d, want 4", len(outcomes))
	}
	if outcomes[0].Err != nil || outcomes[3].Err != nil {
		t.Fatalf("good refs failed: %v, %v", outcomes[0].Err, outcomes[3].Err)
	}
	if !errors.Is(outcomes[1].Err, ErrStaleToken) {
		t.Fatalf("stale token outcome = %v, want ErrStaleToken", outcomes[1].Err)
	}
	if !errors.Is(outcomes[2].Err, ErrNotLeased) {
		t.Fatalf("out-of-range outcome = %v, want ErrNotLeased", outcomes[2].Err)
	}
}

func TestBatchOpsOnClosedManager(t *testing.T) {
	m, _ := newTestManager(t, 8)
	m.Close()
	if _, err := m.AcquireN(4, 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("AcquireN after Close = %v, want ErrClosed", err)
	}
	if _, err := m.RenewAll([]Ref{{Name: 0, Token: 1}}, 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("RenewAll after Close = %v, want ErrClosed", err)
	}
}
