package lease

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/shard"
	"github.com/levelarray/levelarray/internal/tas"
)

// fakeClock is a manually advanced time source for driving Tick directly.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

const testTick = 10 * time.Millisecond

// newTestManager builds a manager over a small LevelArray with a fake clock.
func newTestManager(t *testing.T, capacity int) (*Manager, *fakeClock) {
	t.Helper()
	arr := core.MustNew(core.Config{Capacity: capacity})
	clk := newFakeClock()
	m := MustNewManager(arr, Config{TickInterval: testTick, WheelBuckets: 8, Clock: clk.now})
	return m, clk
}

func TestAcquireReleaseBasic(t *testing.T) {
	m, _ := newTestManager(t, 8)
	l, err := m.Acquire(0)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if l.Token == 0 {
		t.Fatal("token must be nonzero")
	}
	if !l.Deadline.IsZero() {
		t.Fatalf("infinite lease must have zero deadline, got %v", l.Deadline)
	}
	if got := m.Active(); got != 1 {
		t.Fatalf("Active = %d, want 1", got)
	}
	if names := m.Collect(nil); len(names) != 1 || names[0] != l.Name {
		t.Fatalf("Collect = %v, want [%d]", names, l.Name)
	}
	if err := m.Release(l.Name, l.Token); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if got := m.Active(); got != 0 {
		t.Fatalf("Active after release = %d, want 0", got)
	}
	if err := m.Release(l.Name, l.Token); !errors.Is(err, ErrNotLeased) {
		t.Fatalf("double Release = %v, want ErrNotLeased", err)
	}
	s := m.Stats()
	if s.Acquires != 1 || s.Releases != 1 || s.ReleaseRaces != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTokenFencing(t *testing.T) {
	m, _ := newTestManager(t, 8)
	l, err := m.Acquire(time.Second)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if _, err := m.Renew(l.Name, l.Token+1<<TokenHandleBits, time.Second); !errors.Is(err, ErrStaleToken) {
		t.Fatalf("Renew with wrong token = %v, want ErrStaleToken", err)
	}
	if err := m.Release(l.Name, l.Token^1); !errors.Is(err, ErrStaleToken) {
		t.Fatalf("Release with wrong token = %v, want ErrStaleToken", err)
	}
	if err := m.Release(l.Name, l.Token); err != nil {
		t.Fatalf("Release with right token: %v", err)
	}
	s := m.Stats()
	if s.RenewRaces != 1 || s.ReleaseRaces != 1 {
		t.Fatalf("race counters = %+v", s)
	}
}

func TestExpiry(t *testing.T) {
	m, clk := newTestManager(t, 4)
	ttl := 3 * testTick
	l, err := m.Acquire(ttl)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if l.Deadline.IsZero() {
		t.Fatal("finite lease must have a deadline")
	}

	// Ticks strictly before the deadline must not reap the lease.
	clk.advance(2 * testTick)
	m.Tick()
	if got := m.Active(); got != 1 {
		t.Fatalf("Active before deadline = %d, want 1", got)
	}

	// The first tick at/after the deadline reaps it.
	clk.advance(2 * testTick)
	m.Tick()
	if got := m.Active(); got != 0 {
		t.Fatalf("Active after deadline tick = %d, want 0", got)
	}
	if s := m.Stats(); s.Expirations != 1 {
		t.Fatalf("Expirations = %d, want 1", s.Expirations)
	}
	if names := m.Collect(nil); len(names) != 0 {
		t.Fatalf("Collect after expiry = %v, want empty", names)
	}

	// The stale token can neither renew nor release.
	if _, err := m.Renew(l.Name, l.Token, ttl); !errors.Is(err, ErrNotLeased) {
		t.Fatalf("Renew after expiry = %v, want ErrNotLeased", err)
	}
	if err := m.Release(l.Name, l.Token); !errors.Is(err, ErrNotLeased) {
		t.Fatalf("Release after expiry = %v, want ErrNotLeased", err)
	}

	// The slot is reusable, and the new token fences out the old one even on
	// the same name.
	l2, err := m.Acquire(ttl)
	if err != nil {
		t.Fatalf("re-Acquire: %v", err)
	}
	if l2.Token <= l.Token {
		t.Fatalf("token must increase: %d then %d", l.Token, l2.Token)
	}
	if l2.Name == l.Name {
		if err := m.Release(l2.Name, l.Token); !errors.Is(err, ErrStaleToken) {
			t.Fatalf("Release reissued name with old token = %v, want ErrStaleToken", err)
		}
	}
}

func TestRenewExtends(t *testing.T) {
	m, clk := newTestManager(t, 4)
	ttl := 3 * testTick
	l, err := m.Acquire(ttl)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	clk.advance(2 * testTick)
	m.Tick()
	renewed, err := m.Renew(l.Name, l.Token, ttl)
	if err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if !renewed.Deadline.After(l.Deadline) {
		t.Fatalf("renewed deadline %v not after original %v", renewed.Deadline, l.Deadline)
	}

	// Past the original deadline the lease must survive...
	clk.advance(2 * testTick)
	m.Tick()
	if got := m.Active(); got != 1 {
		t.Fatalf("Active past original deadline = %d, want 1 (renewed)", got)
	}
	// ...and past the renewed deadline it must not.
	clk.advance(4 * testTick)
	m.Tick()
	if got := m.Active(); got != 0 {
		t.Fatalf("Active past renewed deadline = %d, want 0", got)
	}
	if s := m.Stats(); s.Renews != 1 || s.Expirations != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInfiniteLeaseNeverExpires(t *testing.T) {
	m, clk := newTestManager(t, 4)
	l, err := m.Acquire(0)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// Many full wheel revolutions.
	for i := 0; i < 50; i++ {
		clk.advance(5 * testTick)
		m.Tick()
	}
	if got := m.Active(); got != 1 {
		t.Fatalf("Active = %d, want 1", got)
	}
	if err := m.Release(l.Name, l.Token); err != nil {
		t.Fatalf("Release: %v", err)
	}
}

func TestExpiryAcrossWheelRevolutions(t *testing.T) {
	m, clk := newTestManager(t, 4)
	// The test wheel has 8 buckets; a 30-tick TTL wraps it almost four times.
	ttl := 30 * testTick
	if _, err := m.Acquire(ttl); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	for i := 0; i < 29; i++ {
		clk.advance(testTick)
		m.Tick()
		if got := m.Active(); got != 1 {
			t.Fatalf("Active at tick %d = %d, want 1", i+1, got)
		}
	}
	clk.advance(2 * testTick)
	m.Tick()
	if got := m.Active(); got != 0 {
		t.Fatalf("Active after TTL = %d, want 0", got)
	}
}

func TestMaxTTL(t *testing.T) {
	arr := core.MustNew(core.Config{Capacity: 4})
	clk := newFakeClock()
	m := MustNewManager(arr, Config{TickInterval: testTick, MaxTTL: time.Second, Clock: clk.now})
	if _, err := m.Acquire(2 * time.Second); !errors.Is(err, ErrTTLTooLong) {
		t.Fatalf("Acquire over MaxTTL = %v, want ErrTTLTooLong", err)
	}
	if _, err := m.Acquire(0); !errors.Is(err, ErrTTLTooLong) {
		t.Fatalf("infinite Acquire under MaxTTL = %v, want ErrTTLTooLong", err)
	}
	if _, err := m.Acquire(time.Second); err != nil {
		t.Fatalf("Acquire at MaxTTL: %v", err)
	}
}

func TestHandlePoolReuse(t *testing.T) {
	m, _ := newTestManager(t, 8)
	l1, err := m.Acquire(0)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	id1 := l1.Token & (1<<TokenHandleBits - 1)
	if id1 == 0 {
		t.Fatal("token must embed the handle identity for Identified handles")
	}
	if err := m.Release(l1.Name, l1.Token); err != nil {
		t.Fatalf("Release: %v", err)
	}
	l2, err := m.Acquire(0)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	id2 := l2.Token & (1<<TokenHandleBits - 1)
	if id1 != id2 {
		t.Fatalf("second acquire used handle %d, want pooled handle %d", id2, id1)
	}
	if l2.Token>>TokenHandleBits <= l1.Token>>TokenHandleBits {
		t.Fatalf("token sequence must increase: %d then %d", l1.Token, l2.Token)
	}
}

func TestCapacityExhaustion(t *testing.T) {
	m, clk := newTestManager(t, 2)
	var leases []Lease
	for {
		l, err := m.Acquire(2 * testTick)
		if err != nil {
			if !errors.Is(err, activity.ErrFull) {
				t.Fatalf("Acquire = %v, want ErrFull at exhaustion", err)
			}
			break
		}
		leases = append(leases, l)
	}
	if len(leases) != m.Size() {
		t.Fatalf("acquired %d leases, want the full namespace %d", len(leases), m.Size())
	}
	if s := m.Stats(); s.FailedAcquires != 1 {
		t.Fatalf("FailedAcquires = %d, want 1", s.FailedAcquires)
	}
	// Expiry makes the whole namespace reusable again.
	clk.advance(4 * testTick)
	m.Tick()
	if got := m.Active(); got != 0 {
		t.Fatalf("Active = %d, want 0", got)
	}
	if _, err := m.Acquire(0); err != nil {
		t.Fatalf("Acquire after expiry: %v", err)
	}
}

func TestOrphanSweepReclaims(t *testing.T) {
	arr := core.MustNew(core.Config{Capacity: 8})
	clk := newFakeClock()
	m := MustNewManager(arr, Config{TickInterval: testTick, Clock: clk.now})

	// A registration that bypassed the manager: a bit set directly on the
	// main bitmap, with no lease record.
	space := arr.MainSpace().(*tas.BitmapSpace)
	if !space.TestAndSet(3) {
		t.Fatal("slot 3 unexpectedly taken")
	}
	orphans, _ := m.Verify()
	if len(orphans) != 1 || orphans[0] != 3 {
		t.Fatalf("Verify orphans = %v, want [3]", orphans)
	}

	// One sweep suspects, the second reclaims.
	clk.advance(testTick)
	m.Tick()
	if space.Read(3) != true {
		t.Fatal("first sweep must only suspect, not reclaim")
	}
	clk.advance(testTick)
	m.Tick()
	if space.Read(3) {
		t.Fatal("second sweep must reclaim the orphan bit")
	}
	if s := m.Stats(); s.OrphansReclaimed != 1 {
		t.Fatalf("OrphansReclaimed = %d, want 1", s.OrphansReclaimed)
	}
	if orphans, missing := m.Verify(); len(orphans) != 0 || len(missing) != 0 {
		t.Fatalf("Verify after reclaim = %v, %v, want clean", orphans, missing)
	}
}

func TestSweepSparesLiveLeases(t *testing.T) {
	m, clk := newTestManager(t, 8)
	l, err := m.Acquire(0)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	for i := 0; i < 5; i++ {
		clk.advance(testTick)
		m.Tick()
	}
	if s := m.Stats(); s.OrphansReclaimed != 0 {
		t.Fatalf("sweep reclaimed a live lease: %+v", s)
	}
	if err := m.Release(l.Name, l.Token); err != nil {
		t.Fatalf("Release: %v", err)
	}
}

func TestShardedManagerWithSteals(t *testing.T) {
	clk := newFakeClock()
	arr := shard.MustNew(shard.Config{Shards: 4, Capacity: 8})
	m := MustNewManager(arr, Config{TickInterval: testTick, Clock: clk.now})

	// Fill well past one shard's capacity so home shards overflow and Gets
	// steal; every lease must still expire and verify cleanly.
	var leases []Lease
	for i := 0; i < arr.Capacity(); i++ {
		l, err := m.Acquire(3 * testTick)
		if err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
		leases = append(leases, l)
	}
	seen := make(map[int]bool)
	for _, l := range leases {
		if seen[l.Name] {
			t.Fatalf("duplicate name %d across concurrent leases", l.Name)
		}
		seen[l.Name] = true
	}
	if orphans, missing := m.Verify(); len(orphans) != 0 || len(missing) != 0 {
		t.Fatalf("Verify = %v, %v, want clean", orphans, missing)
	}
	clk.advance(5 * testTick)
	m.Tick()
	if got := m.Active(); got != 0 {
		t.Fatalf("Active after expiry = %d, want 0", got)
	}
	if s := m.Stats(); s.Expirations != uint64(len(leases)) {
		t.Fatalf("Expirations = %d, want %d", s.Expirations, len(leases))
	}
	if names := m.Collect(nil); len(names) != 0 {
		t.Fatalf("Collect after expiry = %v, want empty", names)
	}
}

func TestCloseRejectsOperations(t *testing.T) {
	m, _ := newTestManager(t, 4)
	l, err := m.Acquire(0)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	m.Start()
	m.Close()
	m.Close() // idempotent
	if _, err := m.Acquire(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Acquire after Close = %v, want ErrClosed", err)
	}
	if _, err := m.Renew(l.Name, l.Token, time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("Renew after Close = %v, want ErrClosed", err)
	}
	if err := m.Release(l.Name, l.Token); !errors.Is(err, ErrClosed) {
		t.Fatalf("Release after Close = %v, want ErrClosed", err)
	}
}

func TestProbeStatsFlow(t *testing.T) {
	m, _ := newTestManager(t, 8)
	for i := 0; i < 5; i++ {
		l, err := m.Acquire(0)
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		if err := m.Release(l.Name, l.Token); err != nil {
			t.Fatalf("Release: %v", err)
		}
	}
	m.Close()
	ps := m.ProbeStats()
	if ps.Ops != 5 || ps.Frees != 5 {
		t.Fatalf("ProbeStats = %+v, want 5 ops / 5 frees", ps)
	}
	if ps.TotalProbes < 5 {
		t.Fatalf("TotalProbes = %d, want at least one probe per Get", ps.TotalProbes)
	}
}

func TestBackgroundExpirer(t *testing.T) {
	arr := core.MustNew(core.Config{Capacity: 4})
	m := MustNewManager(arr, Config{TickInterval: 5 * time.Millisecond})
	m.Start()
	defer m.Close()
	l, err := m.Acquire(20 * time.Millisecond)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for m.Active() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("background expirer did not reap the lease within 2s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := m.Renew(l.Name, l.Token, time.Second); err == nil {
		t.Fatal("Renew of an expired lease must fail")
	}
}

// wheelItemCount sums the live records across all timer-wheel buckets.
func wheelItemCount(m *Manager) int {
	total := 0
	for i := range m.wheel {
		m.wheel[i].mu.Lock()
		total += len(m.wheel[i].items)
		m.wheel[i].mu.Unlock()
	}
	return total
}

// TestRenewDoesNotGrowWheel pins the heartbeat memory contract: a client
// renewing one lease forever must occupy O(1) wheel records, because Renew
// rides the already-scheduled record (which re-hashes itself forward on
// firing) instead of inserting a new one per renew.
func TestRenewDoesNotGrowWheel(t *testing.T) {
	m, clk := newTestManager(t, 4)
	l, err := m.Acquire(5 * testTick)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	for i := 0; i < 500; i++ {
		if _, err := m.Renew(l.Name, l.Token, 5*testTick); err != nil {
			t.Fatalf("Renew %d: %v", i, err)
		}
		if i%3 == 0 {
			clk.advance(testTick)
			m.Tick()
		}
	}
	if n := wheelItemCount(m); n > 2 {
		t.Fatalf("wheel holds %d records after 500 renews of one lease, want O(1)", n)
	}
	// The surviving record must still expire the lease once renews stop.
	clk.advance(7 * testTick)
	m.Tick()
	if got := m.Active(); got != 0 {
		t.Fatalf("Active after letting the heartbeat lapse = %d, want 0", got)
	}
}

// TestRenewShorterTTLExpiresEarlier covers the one case Renew must insert a
// fresh record: shortening the deadline below the scheduled tick.
func TestRenewShorterTTLExpiresEarlier(t *testing.T) {
	m, clk := newTestManager(t, 4)
	l, err := m.Acquire(20 * testTick)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if _, err := m.Renew(l.Name, l.Token, 2*testTick); err != nil {
		t.Fatalf("Renew: %v", err)
	}
	clk.advance(4 * testTick)
	m.Tick()
	if got := m.Active(); got != 0 {
		t.Fatalf("Active after shortened deadline = %d, want 0 (must not wait for the original 20-tick record)", got)
	}
}

// TestRenewInfiniteThenFiniteStillExpires covers the stale-wheelTick hazard:
// an infinite renew lets the scheduled record die, so a later finite renew
// must schedule a fresh one.
func TestRenewInfiniteThenFiniteStillExpires(t *testing.T) {
	m, clk := newTestManager(t, 4)
	l, err := m.Acquire(2 * testTick)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if _, err := m.Renew(l.Name, l.Token, 0); err != nil {
		t.Fatalf("Renew to infinite: %v", err)
	}
	// Let the original record fire and die against the infinite deadline.
	clk.advance(4 * testTick)
	m.Tick()
	if got := m.Active(); got != 1 {
		t.Fatalf("infinite lease expired: Active = %d", got)
	}
	if _, err := m.Renew(l.Name, l.Token, 2*testTick); err != nil {
		t.Fatalf("Renew back to finite: %v", err)
	}
	clk.advance(4 * testTick)
	m.Tick()
	if got := m.Active(); got != 0 {
		t.Fatalf("finite-again lease never expired: Active = %d", got)
	}
}

// TestStartAfterCloseIsNoop pins the lifecycle contract: Start on a closed
// manager must not launch an expirer (which nothing could ever stop).
func TestStartAfterCloseIsNoop(t *testing.T) {
	m, _ := newTestManager(t, 4)
	m.Close()
	m.Start()
	m.lifeMu.Lock()
	started := m.started
	m.lifeMu.Unlock()
	if started {
		t.Fatal("Start after Close launched an expirer")
	}
	m.Close() // must not hang
}
