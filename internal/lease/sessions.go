package lease

import "time"

// Session describes one active lease in a debug listing: the Lease fields a
// holder was granted, re-read from the live table. Listings power the
// GET /leases endpoint and cmd/lactl, and give failover tests a way to
// enumerate exactly which names a node held when it was killed.
type Session struct {
	Name     int       `json:"name"`
	Token    uint64    `json:"token"`
	Deadline time.Time `json:"deadline,omitzero"` // zero for an infinite lease
}

// Sessions returns up to limit active sessions with Name >= start, in
// ascending name order, together with the cursor to pass as the next start
// (-1 when the scan reached the end of the namespace). Like Collect it is
// not an atomic snapshot: each entry is read under its own lock, so a
// concurrent release or expiry may hide a session the caller saw granted,
// but every returned session was active at the instant it was read.
func (m *Manager) Sessions(start, limit int) ([]Session, int) {
	if start < 0 {
		start = 0
	}
	if limit <= 0 {
		return nil, nextCursor(start, len(m.entries))
	}
	var page []Session
	for name := start; name < len(m.entries); name++ {
		e := &m.entries[name]
		e.mu.Lock()
		if e.active {
			page = append(page, Session{Name: name, Token: e.token, Deadline: fromNanos(e.deadline)})
		}
		e.mu.Unlock()
		if len(page) == limit {
			return page, nextCursor(name+1, len(m.entries))
		}
	}
	return page, -1
}

// nextCursor maps a resume index to the wire cursor encoding: -1 once the
// namespace is exhausted.
func nextCursor(next, size int) int {
	if next >= size {
		return -1
	}
	return next
}

// LoadFactor returns the fraction of the manager's capacity currently held
// by active leases — the per-partition occupancy signal the cluster layer
// uses to pick acquire targets and to reason about rebalancing.
func (m *Manager) LoadFactor() float64 {
	if c := m.arr.Capacity(); c > 0 {
		return float64(m.active.Load()) / float64(c)
	}
	return 0
}
