package lease

import (
	"testing"
	"time"

	"github.com/levelarray/levelarray/internal/core"
)

// TestSessionsPagination walks the active-session listing page by page and
// checks it reports exactly the live leases, in name order, with working
// cursors.
func TestSessionsPagination(t *testing.T) {
	m, _ := newTestManager(t, 16)
	defer m.Close()

	want := make(map[int]Lease)
	for i := 0; i < 10; i++ {
		l, err := m.Acquire(time.Minute)
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		want[l.Name] = l
	}
	// Release a few so the listing has holes to skip.
	released := 0
	for name, l := range want {
		if released == 3 {
			break
		}
		if err := m.Release(name, l.Token); err != nil {
			t.Fatalf("Release(%d): %v", name, err)
		}
		delete(want, name)
		released++
	}

	seen := make(map[int]Session)
	prev := -1
	for start := 0; start != -1; {
		page, next := m.Sessions(start, 3)
		if len(page) > 3 {
			t.Fatalf("page of %d exceeds limit 3", len(page))
		}
		for _, s := range page {
			if s.Name <= prev {
				t.Fatalf("session names not ascending: %d after %d", s.Name, prev)
			}
			prev = s.Name
			if _, dup := seen[s.Name]; dup {
				t.Fatalf("name %d listed twice", s.Name)
			}
			seen[s.Name] = s
		}
		if next != -1 && next <= start {
			t.Fatalf("cursor did not advance: start %d -> next %d", start, next)
		}
		start = next
	}

	if len(seen) != len(want) {
		t.Fatalf("listed %d sessions, want %d", len(seen), len(want))
	}
	for name, l := range want {
		s, ok := seen[name]
		if !ok {
			t.Fatalf("active lease %d missing from listing", name)
		}
		if s.Token != l.Token {
			t.Fatalf("session %d token %d, want %d", name, s.Token, l.Token)
		}
		if !s.Deadline.Equal(l.Deadline) {
			t.Fatalf("session %d deadline %v, want %v", name, s.Deadline, l.Deadline)
		}
	}
}

// TestSessionsEdgeCases covers empty tables, negative starts, zero limits and
// infinite-lease deadlines.
func TestSessionsEdgeCases(t *testing.T) {
	m, _ := newTestManager(t, 8)
	defer m.Close()

	if page, next := m.Sessions(0, 5); len(page) != 0 || next != -1 {
		t.Fatalf("empty manager listed %d sessions, next %d", len(page), next)
	}

	l, err := m.Acquire(0) // infinite
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	page, next := m.Sessions(-10, 5)
	if len(page) != 1 || next != -1 {
		t.Fatalf("got %d sessions next %d, want 1 and -1", len(page), next)
	}
	if !page[0].Deadline.IsZero() {
		t.Fatalf("infinite lease listed with deadline %v", page[0].Deadline)
	}
	if page, next = m.Sessions(l.Name+1, 5); len(page) != 0 || next != -1 {
		t.Fatalf("listing past the only session returned %d, next %d", len(page), next)
	}
	if _, next = m.Sessions(0, 0); next != 0 {
		t.Fatalf("zero limit should return the start cursor, got %d", next)
	}
}

// TestLoadFactor checks the occupancy signal tracks active leases.
func TestLoadFactor(t *testing.T) {
	m, _ := newTestManager(t, 8)
	defer m.Close()

	if lf := m.LoadFactor(); lf != 0 {
		t.Fatalf("empty load factor %v, want 0", lf)
	}
	var leases []Lease
	for i := 0; i < 4; i++ {
		l, err := m.Acquire(time.Minute)
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		leases = append(leases, l)
	}
	if lf := m.LoadFactor(); lf != 0.5 {
		t.Fatalf("load factor %v, want 0.5", lf)
	}
	for _, l := range leases {
		if err := m.Release(l.Name, l.Token); err != nil {
			t.Fatalf("Release: %v", err)
		}
	}
	if lf := m.LoadFactor(); lf != 0 {
		t.Fatalf("drained load factor %v, want 0", lf)
	}
}

// TestTokenSeqBase checks the fencing-token sequence starts at the
// configured base: the hook the cluster layer uses to keep successive
// owners of a failed-over partition in disjoint token spaces.
func TestTokenSeqBase(t *testing.T) {
	arr := core.MustNew(core.Config{Capacity: 8})
	base := uint64(7) << 32
	m := MustNewManager(arr, Config{TickInterval: testTick, TokenSeqBase: base})
	defer m.Close()
	prev := uint64(0)
	for i := 0; i < 4; i++ {
		l, err := m.Acquire(0)
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		if seq := l.Token >> TokenHandleBits; seq <= base {
			t.Fatalf("token %d has sequence %d, want above base %d", l.Token, seq, base)
		}
		if l.Token <= prev {
			t.Fatalf("tokens not strictly increasing: %d after %d", l.Token, prev)
		}
		prev = l.Token
	}
}
