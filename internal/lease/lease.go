// Package lease binds every registration on an activity array to a
// TTL-bounded, token-fenced session: the crash-safety layer that turns the
// in-process Get/Free discipline into something remote clients can hold.
//
// A Manager wraps any activity.Array (a single LevelArray or the sharded
// composition). Acquire performs one Get through a pooled handle and returns
// the name together with a fencing token and a deadline; Renew extends the
// deadline; Release frees the name. Both Renew and Release are rejected when
// the presented token does not match the slot's current lease, so a client
// that crashed, lost its lease to expiry, and comes back with a stale token
// can neither extend nor free a name that has since been reissued — the
// classic fencing-token contract.
//
// Expiry is driven by a hashed timer wheel: each finite-TTL lease is hashed
// into the bucket of its deadline tick (rounded up, so a lease is never
// reaped early), and an expirer pass scans only the buckets whose ticks have
// elapsed. A tick therefore costs O(expired + bucket collisions), not
// O(capacity), and an abandoned lease is reclaimed within one tick of its
// deadline. Expiry frees the slot through the same handle that acquired it,
// so the underlying array observes a perfectly well-formed Get/Free history.
//
// Each expirer pass additionally cross-checks the lease table against the
// array's word-level bitmap state (tas.BitmapSpace.ForEachSet, one atomic
// load per 64 slots): a bit that stays set across two consecutive sweeps
// with no lease record is an orphan — a registration that bypassed or
// outlived its bookkeeping — and is reclaimed directly on the bitmap. The
// sweep runs only on arrays whose slot spaces are uninstrumented bitmap
// spaces; other substrates keep wheel-driven expiry but skip the cross-check.
package lease

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/shard"
	"github.com/levelarray/levelarray/internal/tas"
	"github.com/levelarray/levelarray/internal/trace"
	"github.com/levelarray/levelarray/internal/wal"
)

// Errors returned by the Manager beyond those of the underlying array.
var (
	// ErrStaleToken is returned by Renew and Release when the name exists but
	// the presented fencing token does not match its current lease (the lease
	// expired, was released, or the name was reissued).
	ErrStaleToken = errors.New("lease: fencing token does not match current lease")

	// ErrNotLeased is returned by Renew and Release when the name has no
	// active lease at all.
	ErrNotLeased = errors.New("lease: name not currently leased")

	// ErrClosed is returned by Acquire, Renew and Release after Close.
	ErrClosed = errors.New("lease: manager closed")

	// ErrTTLTooLong is returned by Acquire and Renew when the requested TTL
	// exceeds the configured MaxTTL.
	ErrTTLTooLong = errors.New("lease: requested TTL exceeds MaxTTL")
)

// TokenHandleBits is the number of low token bits that carry the acquiring
// handle's stable identity (activity.Identified). The remaining high bits
// hold a strictly increasing acquisition sequence number, so tokens are
// unique and monotone across every lease the manager ever grants — the
// property fencing tokens need — while still recording which pooled handle
// holds the slot, which Verify and the tests use.
const TokenHandleBits = 16

// Lease describes one granted session.
type Lease struct {
	// Name is the acquired index in [0, Size()) of the underlying array.
	Name int `json:"name"`
	// Token is the fencing token that must accompany Renew and Release.
	Token uint64 `json:"token"`
	// Deadline is the instant the lease expires; the zero time for an
	// infinite (TTL <= 0) lease.
	Deadline time.Time `json:"deadline,omitzero"`
}

// Config parameterizes a Manager. The zero value selects the defaults noted
// on each field.
type Config struct {
	// TickInterval is the expirer granularity: a lease is reclaimed at the
	// first tick boundary at or after its deadline, so expiry lateness is
	// bounded by one tick. Zero selects 100ms.
	TickInterval time.Duration

	// WheelBuckets is the number of timer-wheel buckets deadlines hash into.
	// More buckets mean fewer not-yet-due rescans for TTLs longer than one
	// wheel revolution (TickInterval * WheelBuckets). Zero selects 256.
	WheelBuckets int

	// MaxTTL, when positive, caps the TTL of Acquire and Renew; longer
	// requests fail with ErrTTLTooLong. Zero accepts any TTL, including the
	// infinite (TTL <= 0) lease.
	MaxTTL time.Duration

	// TokenSeqBase offsets the fencing-token sequence space. Managers whose
	// lifetimes can overlap over the same namespace window — successive
	// owners of a failed-over cluster partition — must use distinct bases,
	// or a token minted by one incarnation could exactly equal a token
	// minted by another and slip through the fence. The cluster layer
	// derives the base from the table epoch. Zero starts the sequence at
	// zero (the single-manager case, where uniqueness is per-manager).
	TokenSeqBase uint64

	// Clock overrides the time source, for deterministic tests driving the
	// expirer with Tick. Nil selects time.Now.
	Clock func() time.Time

	// Journal, when non-nil, makes lease transitions durable: every acquire,
	// renew, release and expiry is appended to it before the operation is
	// acknowledged (rollback on append failure keeps the in-memory grant and
	// the log in agreement), and Restore rebuilds the manager from its
	// recovered state after a crash. Nil keeps the manager purely in-memory.
	Journal Journal
}

func (c Config) withDefaults() Config {
	if c.TickInterval <= 0 {
		c.TickInterval = 100 * time.Millisecond
	}
	if c.WheelBuckets <= 0 {
		c.WheelBuckets = 256
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// entry is the per-name lease record. The mutex serializes every state
// transition of one name (acquire, renew, release, expire, orphan reclaim)
// and protects the bound handle, which is not safe for concurrent use.
type entry struct {
	mu       sync.Mutex
	active   bool
	token    uint64
	deadline int64 // UnixNano; 0 = infinite, never expires
	// wheelTick is the tick of the earliest live timer-wheel record covering
	// this lease (0 = none). Renew skips inserting a new record while one is
	// already scheduled at or before the new deadline tick — the record's
	// firing re-hashes to the then-current deadline — so a heartbeating
	// client costs one wheel record, not one per renew.
	wheelTick int64
	handle    activity.Handle
}

// wheelItem is one timer-wheel record. Records are lazily deleted: a release
// or renew leaves the old record in place, and the expirer drops it when the
// token no longer matches the entry (or the deadline moved).
type wheelItem struct {
	name  int
	token uint64
}

// bucket is one timer-wheel bucket.
type bucket struct {
	mu    sync.Mutex
	items []wheelItem
}

// view is one window of the underlying array's namespace backed by a raw
// bitmap space: global name = base + local slot. Views power the orphan
// cross-check sweep.
type view struct {
	space *tas.BitmapSpace
	base  int
}

// Manager grants, renews, releases and expires leases over one activity
// array. All methods are safe for concurrent use.
type Manager struct {
	arr activity.Array
	cfg Config

	entries []entry
	wheel   []bucket
	views   []view

	// suspects holds the names the previous sweep found set-but-unleased;
	// a name suspected on two consecutive sweeps is reclaimed as an orphan.
	// Only the expirer pass (serialized by tickMu) touches it.
	suspects map[int]struct{}
	lastTick int64
	tickMu   sync.Mutex

	poolMu sync.Mutex
	pool   []activity.Handle // free handles, LIFO so hot handles stay hot
	all    []activity.Handle // every handle ever created, for ProbeStats

	// journal mirrors cfg.Journal; journalMu is the checkpoint barrier. Every
	// journaling mutation holds it for read across (entry mutation + append);
	// Checkpoint holds it for write while it records the log cut and captures
	// the session table, so cut and capture form one consistent point.
	journal   Journal
	journalMu sync.RWMutex
	restored  atomic.Uint64

	tokenSeq atomic.Uint64
	// pendingGets counts Acquire calls between their Get and the activation
	// of the entry. The orphan sweep refuses to reclaim while any are in
	// flight, closing the window in which a freshly won bit has no lease
	// record yet (see sweep).
	pendingGets atomic.Int64

	active         atomic.Int64
	acquires       atomic.Uint64
	renews         atomic.Uint64
	releases       atomic.Uint64
	expirations    atomic.Uint64
	failedAcquires atomic.Uint64
	renewRaces     atomic.Uint64
	releaseRaces   atomic.Uint64
	orphans        atomic.Uint64
	ticks          atomic.Uint64

	// lifeMu serializes Start/Close; closed stays an atomic so the operation
	// hot paths can check it without taking the mutex.
	lifeMu     sync.Mutex
	closed     atomic.Bool
	started    bool
	stopClosed bool
	stop       chan struct{}
	done       chan struct{}
}

// NewManager builds a Manager over arr. The expirer does not run until Start
// (or explicit Tick calls); leases granted before that simply do not expire
// yet. The lease table is indexed by name, so memory is O(arr.Size()).
func NewManager(arr activity.Array, cfg Config) (*Manager, error) {
	if arr == nil {
		return nil, errors.New("lease: array must not be nil")
	}
	cfg = cfg.withDefaults()
	m := &Manager{
		arr:      arr,
		cfg:      cfg,
		entries:  make([]entry, arr.Size()),
		wheel:    make([]bucket, cfg.WheelBuckets),
		views:    bitmapViews(arr),
		suspects: make(map[int]struct{}),
		lastTick: cfg.Clock().UnixNano() / int64(cfg.TickInterval),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	m.tokenSeq.Store(cfg.TokenSeqBase)
	m.journal = cfg.Journal
	return m, nil
}

// journalRLock/journalRUnlock bracket a journaling mutation; no-ops when the
// manager runs without a journal, so the in-memory hot path is unchanged.
func (m *Manager) journalRLock() {
	if m.journal != nil {
		m.journalMu.RLock()
	}
}

func (m *Manager) journalRUnlock() {
	if m.journal != nil {
		m.journalMu.RUnlock()
	}
}

// MustNewManager is NewManager but panics on error; for tests and examples.
func MustNewManager(arr activity.Array, cfg Config) *Manager {
	m, err := NewManager(arr, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// bitmapViews resolves the raw bitmap windows of arr's namespace: the
// main/backup spaces of a LevelArray (or any array exporting them), each
// shard of a Sharded composition at its global base, or nothing when the
// substrate is not an uninstrumented bitmap, which disables the orphan sweep.
func bitmapViews(arr activity.Array) []view {
	if s, ok := arr.(*shard.Sharded); ok {
		var out []view
		for i := 0; i < s.Shards(); i++ {
			vs := arrayViews(s.Shard(i))
			if vs == nil {
				// A partially scannable namespace would make every slot of
				// the opaque shards look permanently unleased to Verify;
				// all-or-nothing keeps the cross-check honest.
				return nil
			}
			for _, v := range vs {
				v.base += i * s.Stride()
				out = append(out, v)
			}
		}
		return out
	}
	return arrayViews(arr)
}

// arrayViews resolves the bitmap windows of one unsharded array.
func arrayViews(arr activity.Array) []view {
	switch a := arr.(type) {
	case interface {
		MainSpace() tas.Space
		BackupSpace() tas.Space
	}:
		main, mok := a.MainSpace().(*tas.BitmapSpace)
		backup, bok := a.BackupSpace().(*tas.BitmapSpace)
		if mok && bok {
			return []view{{space: main, base: 0}, {space: backup, base: main.Len()}}
		}
	case interface{ Space() tas.Space }:
		if sp, ok := a.Space().(*tas.BitmapSpace); ok {
			return []view{{space: sp, base: 0}}
		}
	}
	return nil
}

// Array returns the wrapped activity array.
func (m *Manager) Array() activity.Array { return m.arr }

// Capacity returns the wrapped array's contention bound.
func (m *Manager) Capacity() int { return m.arr.Capacity() }

// Size returns the wrapped array's namespace size.
func (m *Manager) Size() int { return m.arr.Size() }

// TickInterval returns the expirer granularity.
func (m *Manager) TickInterval() time.Duration { return m.cfg.TickInterval }

// Collect appends the currently registered names to dst, with the underlying
// array's validity guarantee. Names of expired-but-not-yet-reaped leases may
// still appear until the next tick.
func (m *Manager) Collect(dst []int) []int { return m.arr.Collect(dst) }

// Active returns the number of currently active leases.
func (m *Manager) Active() int { return int(m.active.Load()) }

func (m *Manager) now() time.Time { return m.cfg.Clock() }

// clampTTL validates ttl against MaxTTL. Non-positive TTLs select the
// infinite lease (returned as 0).
func (m *Manager) clampTTL(ttl time.Duration) (time.Duration, error) {
	if ttl <= 0 {
		if m.cfg.MaxTTL > 0 {
			return 0, ErrTTLTooLong
		}
		return 0, nil
	}
	if m.cfg.MaxTTL > 0 && ttl > m.cfg.MaxTTL {
		return 0, ErrTTLTooLong
	}
	return ttl, nil
}

// getHandle pops a pooled handle or creates one.
func (m *Manager) getHandle() activity.Handle {
	m.poolMu.Lock()
	if n := len(m.pool); n > 0 {
		h := m.pool[n-1]
		m.pool = m.pool[:n-1]
		m.poolMu.Unlock()
		return h
	}
	m.poolMu.Unlock()
	h := m.arr.Handle()
	m.poolMu.Lock()
	m.all = append(m.all, h)
	m.poolMu.Unlock()
	return h
}

// putHandle returns an idle handle to the pool.
func (m *Manager) putHandle(h activity.Handle) {
	m.poolMu.Lock()
	m.pool = append(m.pool, h)
	m.poolMu.Unlock()
}

// mintToken builds the next fencing token: a strictly increasing sequence
// number in the high bits, the acquiring handle's stable identity (when the
// handle exposes one) in the low TokenHandleBits.
func (m *Manager) mintToken(h activity.Handle) uint64 {
	seq := m.tokenSeq.Add(1)
	var id uint64
	if ident, ok := h.(activity.Identified); ok {
		id = ident.ID()
	}
	return seq<<TokenHandleBits | id&(1<<TokenHandleBits-1)
}

// Acquire registers one participant and grants a lease of the given TTL
// (non-positive = infinite). It returns the underlying array's error
// unchanged when registration fails — activity.ErrFull means every slot is
// leased or awaiting expiry.
func (m *Manager) Acquire(ttl time.Duration) (Lease, error) {
	return m.AcquireSpan(ttl, nil)
}

// AcquireSpan is Acquire with flight-recorder phase attribution: the array
// probe is charged to lease-table, the entry-lock (plus checkpoint-barrier)
// wait to lock-wait, and — through the journal — the WAL write and group
// fsync to wal-append and fsync-wait. A nil span records nothing and costs
// only nil checks.
func (m *Manager) AcquireSpan(ttl time.Duration, sp *trace.Op) (Lease, error) {
	if m.closed.Load() {
		return Lease{}, ErrClosed
	}
	ttl, err := m.clampTTL(ttl)
	if err != nil {
		return Lease{}, err
	}
	h := m.getHandle()
	m.pendingGets.Add(1)
	var mark time.Time
	if sp != nil {
		mark = time.Now()
	}
	name, err := h.Get()
	if sp != nil {
		sp.Phase(trace.PhaseLeaseTable, time.Since(mark))
	}
	if err != nil {
		m.pendingGets.Add(-1)
		m.putHandle(h)
		if errors.Is(err, activity.ErrFull) {
			m.failedAcquires.Add(1)
		}
		return Lease{}, err
	}
	token := m.mintToken(h)
	var deadline int64
	if ttl > 0 {
		deadline = m.now().Add(ttl).UnixNano()
	}
	e := &m.entries[name]
	if sp != nil {
		mark = time.Now()
	}
	m.journalRLock()
	e.mu.Lock()
	if sp != nil {
		sp.Phase(trace.PhaseLockWait, time.Since(mark))
	}
	e.active = true
	e.token = token
	e.deadline = deadline
	e.wheelTick = 0
	if deadline != 0 {
		e.wheelTick = m.tickOf(deadline)
	}
	e.handle = h
	if m.journal != nil {
		// Durable-before-ack: the grant is journaled (and, under SyncAlways,
		// fsynced) before the token leaves this function. A failed append
		// rolls the grant back so memory and log stay in agreement.
		if err := m.journalAppend(sp, wal.OpAcquire, uint32(name), token, deadline); err != nil {
			e.active = false
			e.wheelTick = 0
			e.handle = nil
			e.mu.Unlock()
			m.journalRUnlock()
			m.pendingGets.Add(-1)
			_ = h.Free()
			m.putHandle(h)
			return Lease{}, fmt.Errorf("lease: journal acquire: %w", err)
		}
	}
	e.mu.Unlock()
	m.journalRUnlock()
	m.pendingGets.Add(-1)
	if deadline != 0 {
		m.wheelInsert(deadline, name, token)
	}
	m.acquires.Add(1)
	m.active.Add(1)
	return Lease{Name: name, Token: token, Deadline: fromNanos(deadline)}, nil
}

// Renew extends (or shortens, or makes infinite) the lease on name, fenced
// by token. A stale token is counted as a renew race and rejected.
func (m *Manager) Renew(name int, token uint64, ttl time.Duration) (Lease, error) {
	return m.RenewSpan(name, token, ttl, nil)
}

// RenewSpan is Renew with flight-recorder phase attribution (see AcquireSpan).
func (m *Manager) RenewSpan(name int, token uint64, ttl time.Duration, sp *trace.Op) (Lease, error) {
	if m.closed.Load() {
		return Lease{}, ErrClosed
	}
	if name < 0 || name >= len(m.entries) {
		return Lease{}, fmt.Errorf("lease: name %d outside namespace [0, %d): %w", name, len(m.entries), ErrNotLeased)
	}
	ttl, err := m.clampTTL(ttl)
	if err != nil {
		return Lease{}, err
	}
	var deadline int64
	if ttl > 0 {
		deadline = m.now().Add(ttl).UnixNano()
	}
	e := &m.entries[name]
	var mark time.Time
	if sp != nil {
		mark = time.Now()
	}
	m.journalRLock()
	e.mu.Lock()
	if sp != nil {
		sp.Phase(trace.PhaseLockWait, time.Since(mark))
	}
	if !e.active {
		e.mu.Unlock()
		m.journalRUnlock()
		m.renewRaces.Add(1)
		return Lease{}, ErrNotLeased
	}
	if e.token != token {
		e.mu.Unlock()
		m.journalRUnlock()
		m.renewRaces.Add(1)
		return Lease{}, ErrStaleToken
	}
	oldDeadline, oldWheelTick := e.deadline, e.wheelTick
	e.deadline = deadline
	// A new wheel record is only needed when no live record covers the new
	// deadline: an existing record at an earlier-or-equal tick will fire and
	// re-hash to the deadline current at that moment, so extensions ride the
	// record they already have instead of accumulating one per renew.
	insert := deadline != 0 && (e.wheelTick == 0 || m.tickOf(deadline) < e.wheelTick)
	if insert {
		e.wheelTick = m.tickOf(deadline)
	}
	if m.journal != nil {
		// Durable-before-ack, same as Acquire: an extension the client may
		// act on must survive a crash, or replay would expire the lease
		// earlier than the deadline this call stated.
		if err := m.journalAppend(sp, wal.OpRenew, uint32(name), token, deadline); err != nil {
			e.deadline, e.wheelTick = oldDeadline, oldWheelTick
			e.mu.Unlock()
			m.journalRUnlock()
			return Lease{}, fmt.Errorf("lease: journal renew: %w", err)
		}
	}
	e.mu.Unlock()
	m.journalRUnlock()
	if insert {
		m.wheelInsert(deadline, name, token)
	}
	m.renews.Add(1)
	return Lease{Name: name, Token: token, Deadline: fromNanos(deadline)}, nil
}

// Release frees the name, fenced by token. A stale token is counted as a
// release race and rejected, so a double release (or a release racing a
// reissue) can never free another holder's slot.
func (m *Manager) Release(name int, token uint64) error {
	return m.ReleaseSpan(name, token, nil)
}

// ReleaseSpan is Release with flight-recorder phase attribution (see
// AcquireSpan).
func (m *Manager) ReleaseSpan(name int, token uint64, sp *trace.Op) error {
	if m.closed.Load() {
		return ErrClosed
	}
	if name < 0 || name >= len(m.entries) {
		return fmt.Errorf("lease: name %d outside namespace [0, %d): %w", name, len(m.entries), ErrNotLeased)
	}
	e := &m.entries[name]
	var mark time.Time
	if sp != nil {
		mark = time.Now()
	}
	m.journalRLock()
	e.mu.Lock()
	if sp != nil {
		sp.Phase(trace.PhaseLockWait, time.Since(mark))
	}
	if !e.active {
		e.mu.Unlock()
		m.journalRUnlock()
		m.releaseRaces.Add(1)
		return ErrNotLeased
	}
	if e.token != token {
		e.mu.Unlock()
		m.journalRUnlock()
		m.releaseRaces.Add(1)
		return ErrStaleToken
	}
	if m.journal != nil {
		// Journal before freeing: a failed append leaves the lease held (the
		// client can retry) rather than freed-in-memory but held-on-replay.
		// The reverse loss — record durable, crash before the in-memory free
		// — is invisible: the process died with it.
		if err := m.journalAppend(sp, wal.OpRelease, uint32(name), token, 0); err != nil {
			e.mu.Unlock()
			m.journalRUnlock()
			return fmt.Errorf("lease: journal release: %w", err)
		}
	}
	h := e.handle
	err := h.Free()
	e.active = false
	e.wheelTick = 0
	e.handle = nil
	e.mu.Unlock()
	m.journalRUnlock()
	m.putHandle(h)
	m.active.Add(-1)
	m.releases.Add(1)
	return err
}

// tracedJournal is the optional Journal extension that attributes WAL queue,
// append and group-fsync time into a span. *wal.Store implements it; plain
// Journal implementations (including test doubles) are used untraced.
type tracedJournal interface {
	AppendTraced(sp *trace.Op, op wal.Op, name uint32, token uint64, deadline int64) error
}

// journalAppend routes one record through the traced append when a span is
// live and the journal supports it, and through the plain append otherwise.
func (m *Manager) journalAppend(sp *trace.Op, op wal.Op, name uint32, token uint64, deadline int64) error {
	if sp != nil {
		if tj, ok := m.journal.(tracedJournal); ok {
			return tj.AppendTraced(sp, op, name, token, deadline)
		}
	}
	return m.journal.Append(op, name, token, deadline)
}

// fromNanos converts a deadline in UnixNano (0 = infinite) to a time.Time.
func fromNanos(n int64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}
