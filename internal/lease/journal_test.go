package lease

import (
	"errors"
	"sort"
	"testing"
	"time"

	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/shard"
	"github.com/levelarray/levelarray/internal/wal"
)

// newJournaledManager builds a manager over a LevelArray journaling into dir.
func newJournaledManager(t *testing.T, dir string, capacity int, clk *fakeClock) (*Manager, *wal.Store) {
	t.Helper()
	st, err := wal.Open(dir, wal.SyncNever, 0)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	arr := core.MustNew(core.Config{Capacity: capacity})
	m := MustNewManager(arr, Config{TickInterval: testTick, WheelBuckets: 8, Clock: clk.now, Journal: st})
	return m, st
}

// liveState captures the comparable durable state of a manager: its active
// sessions (name, token, raw deadline) and its bitmap words.
func liveState(m *Manager) ([]Session, [][]uint64) {
	sessions, _ := m.Sessions(0, m.Size())
	var words [][]uint64
	for _, v := range m.views {
		words = append(words, v.space.SnapshotWords())
	}
	return sessions, words
}

func assertSameState(t *testing.T, want, got *Manager) {
	t.Helper()
	ws, ww := liveState(want)
	gs, gw := liveState(got)
	if len(ws) != len(gs) {
		t.Fatalf("restored %d sessions, want %d\nwant %+v\ngot  %+v", len(gs), len(ws), ws, gs)
	}
	for i := range ws {
		if ws[i].Name != gs[i].Name || ws[i].Token != gs[i].Token || !ws[i].Deadline.Equal(gs[i].Deadline) {
			t.Fatalf("session[%d] = %+v, want %+v", i, gs[i], ws[i])
		}
	}
	if len(ww) != len(gw) {
		t.Fatalf("view count: got %d want %d", len(gw), len(ww))
	}
	for i := range ww {
		if len(ww[i]) != len(gw[i]) {
			t.Fatalf("view %d word count: got %d want %d", i, len(gw[i]), len(ww[i]))
		}
		for j := range ww[i] {
			if ww[i][j] != gw[i][j] {
				t.Fatalf("view %d word %d: got %#x want %#x", i, j, gw[i][j], ww[i][j])
			}
		}
	}
	if want.Active() != got.Active() {
		t.Fatalf("Active: got %d want %d", got.Active(), want.Active())
	}
}

// crashRestore simulates a crash (no final checkpoint) and rebuilds a fresh
// manager from the same directory.
func crashRestore(t *testing.T, dir string, capacity int, clk *fakeClock, st *wal.Store) (*Manager, *wal.Store, RestoreStats) {
	t.Helper()
	_ = st.Close() // flush-only; a crash loses nothing the test wrote under SyncNever+same-FS read
	m2, st2 := newJournaledManager(t, dir, capacity, clk)
	stats, err := m2.Restore()
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	return m2, st2, stats
}

func TestJournalRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	m, st := newJournaledManager(t, dir, 64, clk)

	var leases []Lease
	for i := 0; i < 20; i++ {
		ttl := time.Duration(0)
		if i%3 != 0 {
			ttl = time.Duration(i+1) * 50 * time.Millisecond
		}
		l, err := m.Acquire(ttl)
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		leases = append(leases, l)
	}
	// Renew a few, release a few, expire a few.
	for i := 0; i < 6; i++ {
		if _, err := m.Renew(leases[i].Name, leases[i].Token, time.Second); err != nil {
			t.Fatalf("Renew: %v", err)
		}
	}
	for i := 6; i < 10; i++ {
		if err := m.Release(leases[i].Name, leases[i].Token); err != nil {
			t.Fatalf("Release: %v", err)
		}
	}
	clk.advance(120 * time.Millisecond) // expires the short-TTL tail
	m.Tick()

	m2, st2, stats := crashRestore(t, dir, 64, clk, st)
	defer st2.Close()
	assertSameState(t, m, m2)
	if stats.Sessions != m.Active() {
		t.Fatalf("RestoreStats.Sessions = %d, want %d", stats.Sessions, m.Active())
	}

	// Tokens minted after restore must exceed everything granted before.
	var maxTok uint64
	for _, l := range leases {
		if l.Token > maxTok {
			maxTok = l.Token
		}
	}
	l, err := m2.Acquire(0)
	if err != nil {
		t.Fatalf("post-restore Acquire: %v", err)
	}
	if l.Token <= maxTok {
		t.Fatalf("post-restore token %d not above pre-crash max %d", l.Token, maxTok)
	}
	if ob, mb := m2.Verify(); ob != nil || mb != nil {
		t.Fatalf("Verify after restore: orphans=%v missing=%v", ob, mb)
	}
}

func TestCheckpointThenCrashRestore(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	m, st := newJournaledManager(t, dir, 32, clk)

	var leases []Lease
	for i := 0; i < 10; i++ {
		l, err := m.Acquire(time.Minute)
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		leases = append(leases, l)
	}
	if err := m.Checkpoint(3, 7, false); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Post-checkpoint tail: one release, one renew, two fresh acquires.
	if err := m.Release(leases[0].Name, leases[0].Token); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if _, err := m.Renew(leases[1].Name, leases[1].Token, time.Hour); err != nil {
		t.Fatalf("Renew: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.Acquire(0); err != nil {
			t.Fatalf("Acquire: %v", err)
		}
	}

	m2, st2, stats := crashRestore(t, dir, 32, clk, st)
	defer st2.Close()
	assertSameState(t, m, m2)
	if stats.Records == 0 {
		t.Fatal("expected a post-checkpoint tail to be replayed")
	}
	snap, _ := st2.Recovered()
	if snap == nil || snap.Partition != 3 || snap.Epoch != 7 {
		t.Fatalf("snapshot meta = %+v", snap)
	}
}

func TestCleanShutdownRestoreSkipsTail(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	m, st := newJournaledManager(t, dir, 16, clk)
	for i := 0; i < 5; i++ {
		if _, err := m.Acquire(0); err != nil {
			t.Fatalf("Acquire: %v", err)
		}
	}
	if err := m.Checkpoint(0, 1, true); err != nil {
		t.Fatalf("clean Checkpoint: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, err := wal.Open(dir, wal.SyncNever, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	snap, tail := st2.Recovered()
	if snap == nil || len(tail) != 0 {
		t.Fatalf("clean restore: snap=%v tail=%d, want snapshot and empty tail", snap, len(tail))
	}
	arr := core.MustNew(core.Config{Capacity: 16})
	m2 := MustNewManager(arr, Config{TickInterval: testTick, WheelBuckets: 8, Clock: clk.now, Journal: st2})
	if _, err := m2.Restore(); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	assertSameState(t, m, m2)
}

func TestRestoreReapsLapsedDeadlines(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	m, st := newJournaledManager(t, dir, 16, clk)
	l, err := m.Acquire(30 * time.Millisecond)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	keep, err := m.Acquire(0)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}

	// The process "dies" and comes back long after the deadline.
	clk.advance(10 * time.Second)
	m2, st2, stats := crashRestore(t, dir, 16, clk, st)
	defer st2.Close()
	if stats.Sessions != 2 || stats.Expired != 1 {
		t.Fatalf("stats = %+v, want 2 sessions, 1 already-lapsed", stats)
	}
	clk.advance(2 * testTick)
	m2.Tick()
	if got := m2.Active(); got != 1 {
		t.Fatalf("Active after restore+tick = %d, want 1 (lapsed lease reaped)", got)
	}
	if _, err := m2.Renew(l.Name, l.Token, time.Second); !errors.Is(err, ErrNotLeased) && !errors.Is(err, ErrStaleToken) {
		t.Fatalf("renew of lapsed lease after restore = %v, want fenced", err)
	}
	if _, err := m2.Renew(keep.Name, keep.Token, time.Second); err != nil {
		t.Fatalf("renew of surviving lease: %v", err)
	}
	if ob, mb := m2.Verify(); ob != nil || mb != nil {
		t.Fatalf("Verify: orphans=%v missing=%v", ob, mb)
	}
}

func TestRestoreShardedArray(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	st, err := wal.Open(dir, wal.SyncNever, 0)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	arr, err := shard.New(shard.Config{Shards: 4, Capacity: 64, Seed: 1})
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	m := MustNewManager(arr, Config{TickInterval: testTick, WheelBuckets: 8, Clock: clk.now, Journal: st})
	var leases []Lease
	for i := 0; i < 40; i++ {
		l, err := m.Acquire(0)
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		leases = append(leases, l)
	}
	for i := 0; i < 10; i++ {
		if err := m.Release(leases[i].Name, leases[i].Token); err != nil {
			t.Fatalf("Release: %v", err)
		}
	}

	_ = st.Close()
	st2, err := wal.Open(dir, wal.SyncNever, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	arr2, err := shard.New(shard.Config{Shards: 4, Capacity: 64, Seed: 1})
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	m2 := MustNewManager(arr2, Config{TickInterval: testTick, WheelBuckets: 8, Clock: clk.now, Journal: st2})
	if _, err := m2.Restore(); err != nil {
		t.Fatalf("Restore over sharded array: %v", err)
	}
	assertSameState(t, m, m2)
}

func TestBatchOpsJournalAndRestore(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	m, st := newJournaledManager(t, dir, 64, clk)
	granted, err := m.AcquireN(16, time.Minute, nil)
	if err != nil {
		t.Fatalf("AcquireN: %v", err)
	}
	refs := make([]Ref, 0, len(granted))
	for _, l := range granted[:8] {
		refs = append(refs, Ref{Name: l.Name, Token: l.Token})
	}
	if _, err := m.RenewAll(refs, time.Hour, nil); err != nil {
		t.Fatalf("RenewAll: %v", err)
	}

	m2, st2, _ := crashRestore(t, dir, 64, clk, st)
	defer st2.Close()
	assertSameState(t, m, m2)
}

// failingJournal errors every call after the first failAfter appends.
type failingJournal struct {
	appends   int
	failAfter int
}

var errJournalDown = errors.New("journal down")

func (f *failingJournal) Append(op wal.Op, name uint32, token uint64, deadline int64) error {
	f.appends++
	if f.appends > f.failAfter {
		return errJournalDown
	}
	return nil
}

func (f *failingJournal) AppendBatch(recs []wal.Record) error {
	f.appends += len(recs)
	if f.appends > f.failAfter {
		return errJournalDown
	}
	return nil
}

func (f *failingJournal) BeginCheckpoint() (uint64, error)         { return 0, errJournalDown }
func (f *failingJournal) CompleteCheckpoint(s *wal.Snapshot) error { return errJournalDown }
func (f *failingJournal) Recovered() (*wal.Snapshot, []wal.Record) { return nil, nil }

func TestJournalFailureRollsBackGrant(t *testing.T) {
	arr := core.MustNew(core.Config{Capacity: 8})
	clk := newFakeClock()
	fj := &failingJournal{failAfter: 1}
	m := MustNewManager(arr, Config{TickInterval: testTick, WheelBuckets: 8, Clock: clk.now, Journal: fj})
	if _, err := m.Acquire(0); err != nil {
		t.Fatalf("first Acquire (journal up): %v", err)
	}
	if _, err := m.Acquire(0); !errors.Is(err, errJournalDown) {
		t.Fatalf("Acquire with journal down = %v, want errJournalDown", err)
	}
	if got := m.Active(); got != 1 {
		t.Fatalf("Active after rolled-back grant = %d, want 1", got)
	}
	if ob, mb := m.Verify(); ob != nil || mb != nil {
		t.Fatalf("rolled-back grant leaked a bit: orphans=%v missing=%v", ob, mb)
	}
	// Batch path: everything granted before the append failure is rolled back.
	if _, err := m.AcquireN(4, 0, nil); !errors.Is(err, errJournalDown) {
		t.Fatalf("AcquireN with journal down = %v, want errJournalDown", err)
	}
	if got := m.Active(); got != 1 {
		t.Fatalf("Active after rolled-back batch = %d, want 1", got)
	}
	if ob, mb := m.Verify(); ob != nil || mb != nil {
		t.Fatalf("rolled-back batch leaked bits: orphans=%v missing=%v", ob, mb)
	}
}

// TestReplayEquivalenceCutAtEveryBoundary drives a random op sequence
// against a journaled manager while mirroring it in a model, then replays
// the journal cut at every record boundary and asserts the folded state
// matches the model at that cut — the satellite-3 property test.
func TestReplayEquivalenceCutAtEveryBoundary(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	m, st := newJournaledManager(t, dir, 32, clk)

	type modelLease struct {
		token    uint64
		deadline int64
	}
	// model[k] is the expected session table after k journal records.
	model := []map[uint32]modelLease{{}}
	cur := map[uint32]modelLease{}
	snapshotModel := func() {
		cp := make(map[uint32]modelLease, len(cur))
		for k, v := range cur {
			cp[k] = v
		}
		model = append(model, cp)
	}

	r := rng.NewSplitMix64(42)
	var held []Lease
	for op := 0; op < 200; op++ {
		switch {
		case len(held) == 0 || r.Uint64()%3 == 0:
			ttl := time.Duration(r.Uint64()%1000+1) * time.Millisecond
			l, err := m.Acquire(ttl)
			if err != nil {
				continue
			}
			held = append(held, l)
			cur[uint32(l.Name)] = modelLease{token: l.Token, deadline: l.Deadline.UnixNano()}
			snapshotModel()
		case r.Uint64()%2 == 0:
			i := int(r.Uint64() % uint64(len(held)))
			l := held[i]
			nl, err := m.Renew(l.Name, l.Token, time.Duration(r.Uint64()%1000+1)*time.Millisecond)
			if err != nil {
				t.Fatalf("Renew: %v", err)
			}
			held[i] = nl
			cur[uint32(l.Name)] = modelLease{token: l.Token, deadline: nl.Deadline.UnixNano()}
			snapshotModel()
		default:
			i := int(r.Uint64() % uint64(len(held)))
			l := held[i]
			if err := m.Release(l.Name, l.Token); err != nil {
				t.Fatalf("Release: %v", err)
			}
			held = append(held[:i], held[i+1:]...)
			delete(cur, uint32(l.Name))
			snapshotModel()
		}
	}
	_ = st.Close()

	// Replay the log cut at every record boundary: cut k must equal model[k].
	snap, tail := func() (*wal.Snapshot, []wal.Record) {
		st2, err := wal.Open(dir, wal.SyncNever, 0)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer st2.Close()
		s, rec := st2.Recovered()
		out := make([]wal.Record, len(rec))
		copy(out, rec)
		return s, out
	}()
	if snap != nil {
		t.Fatalf("no checkpoint was taken; snapshot should be nil")
	}
	if len(tail)+1 != len(model) {
		t.Fatalf("journal has %d records, model has %d states", len(tail), len(model)-1)
	}
	for k := 0; k <= len(tail); k++ {
		sessions, _ := wal.Fold(nil, tail[:k])
		want := model[k]
		if len(sessions) != len(want) {
			t.Fatalf("cut %d: replayed %d sessions, want %d", k, len(sessions), len(want))
		}
		sort.Slice(sessions, func(i, j int) bool { return sessions[i].Name < sessions[j].Name })
		for _, s := range sessions {
			w, ok := want[s.Name]
			if !ok {
				t.Fatalf("cut %d: replay holds name %d, model does not", k, s.Name)
			}
			if w.token != s.Token || w.deadline != s.Deadline {
				t.Fatalf("cut %d name %d: replay (tok %d dl %d) vs model (tok %d dl %d)",
					k, s.Name, s.Token, s.Deadline, w.token, w.deadline)
			}
		}
	}
}
