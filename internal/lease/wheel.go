package lease

import (
	"time"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/wal"
)

// tickOf maps a deadline to the first tick at or after it, so a lease is
// reaped at the first expirer pass whose wall clock has reached the deadline
// — never early, at most one tick late.
func (m *Manager) tickOf(deadlineNanos int64) int64 {
	tick := int64(m.cfg.TickInterval)
	return (deadlineNanos + tick - 1) / tick
}

// wheelInsert hashes a (name, token, deadline) record into the bucket of its
// deadline tick. Records are never searched or deleted in place: releases
// and renews leave stale records behind, and the expirer pass drops any
// record whose token or deadline no longer matches the live entry.
func (m *Manager) wheelInsert(deadlineNanos int64, name int, token uint64) {
	b := &m.wheel[int(m.tickOf(deadlineNanos)%int64(len(m.wheel)))]
	b.mu.Lock()
	b.items = append(b.items, wheelItem{name: name, token: token})
	b.mu.Unlock()
}

// Tick runs one expirer pass at the current clock: every wheel bucket whose
// tick has elapsed since the previous pass is scanned, due leases are
// expired, and the orphan cross-check sweep runs. The background expirer
// calls it every TickInterval; tests with a fake clock call it directly.
func (m *Manager) Tick() {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()

	now := m.now().UnixNano()
	cur := now / int64(m.cfg.TickInterval)
	if n := int64(len(m.wheel)); cur-m.lastTick >= n {
		// The clock jumped a full wheel revolution (or more): every bucket
		// may hold due records, so scan each exactly once.
		m.lastTick = cur - n
	}
	for t := m.lastTick + 1; t <= cur; t++ {
		m.expireBucket(&m.wheel[int(t%int64(len(m.wheel)))], t)
	}
	m.lastTick = cur
	m.sweep()
	m.ticks.Add(1)
}

// expireBucket drains one bucket at pass tick t: due records expire their
// lease, records renewed to a later deadline are re-hashed, and records
// whose token no longer matches the entry (released, expired, reissued) are
// dropped. Due-ness is decided purely by tick arithmetic: a record is due
// when its deadline tick (rounded up by tickOf) has been reached, and the
// pass only runs once the wall clock has passed that tick boundary, so
// expiry is always at-or-after the nominal deadline.
func (m *Manager) expireBucket(b *bucket, t int64) {
	b.mu.Lock()
	items := b.items
	b.items = nil
	b.mu.Unlock()

	for _, it := range items {
		e := &m.entries[it.name]
		m.journalRLock()
		e.mu.Lock()
		if !e.active || e.token != it.token {
			e.mu.Unlock()
			m.journalRUnlock()
			continue
		}
		if e.deadline == 0 {
			// Renewed to an infinite lease: this record dies here, so a
			// later finite renew must know it needs a fresh one. Clearing
			// unconditionally can at worst cost one redundant record if
			// another record for this lease is still live; leaving a stale
			// wheelTick would instead let a finite renew skip its insert and
			// never expire.
			e.wheelTick = 0
			e.mu.Unlock()
			m.journalRUnlock()
			continue
		}
		if m.tickOf(e.deadline) > t {
			// Renewed (or hashed for a later wheel revolution): re-insert at
			// its current deadline and keep waiting.
			deadline := e.deadline
			e.wheelTick = m.tickOf(deadline)
			e.mu.Unlock()
			m.journalRUnlock()
			m.wheelInsert(deadline, it.name, it.token)
			continue
		}
		if m.journal != nil {
			// Best-effort: there is no client to ack, and a lost expiry
			// record merely replays the lease as held until its (already
			// lapsed) deadline expires it again after restore.
			_ = m.journal.Append(wal.OpExpire, uint32(it.name), it.token, 0)
		}
		h := e.handle
		_ = h.Free()
		e.active = false
		e.wheelTick = 0
		e.handle = nil
		e.mu.Unlock()
		m.journalRUnlock()
		m.putHandle(h)
		m.active.Add(-1)
		m.expirations.Add(1)
	}
}

// sweep is the word-level cross-check: it walks every bitmap view
// (tas.BitmapSpace.ForEachSet, one atomic load per 64 slots) and compares
// set bits against the lease table. A bit observed set with no active lease
// on two consecutive sweeps — one full tick apart, far longer than the
// instant between a Get and its lease activation — is an orphan and is
// reclaimed directly on the bitmap. Reclamation additionally requires that
// no Acquire is between its Get and its activation (pendingGets), which
// makes a false positive impossible rather than merely improbable: if no
// acquisition is in flight and the entry is inactive under its lock, no
// handle holds the bit.
func (m *Manager) sweep() {
	if len(m.views) == 0 {
		return
	}
	// Orphan reclaims mutate bitmap bits outside any journaled transition,
	// so they must not interleave with a checkpoint's word capture.
	m.journalRLock()
	defer m.journalRUnlock()
	next := make(map[int]struct{})
	for _, v := range m.views {
		v.space.ForEachSet(v.base, func(name int) bool {
			e := &m.entries[name]
			e.mu.Lock()
			if e.active {
				e.mu.Unlock()
				return true
			}
			if _, suspected := m.suspects[name]; suspected && m.pendingGets.Load() == 0 {
				v.space.Reset(name - v.base)
				e.mu.Unlock()
				m.orphans.Add(1)
				return true
			}
			e.mu.Unlock()
			// First sighting — or an acquire was in flight, which keeps the
			// name suspected rather than restarting its two-sweep clock.
			next[name] = struct{}{}
			return true
		})
	}
	m.suspects = next
}

// Start launches the background expirer, one Tick per TickInterval. It is
// idempotent, and a no-op on a closed manager; Close stops it.
func (m *Manager) Start() {
	m.lifeMu.Lock()
	defer m.lifeMu.Unlock()
	if m.started || m.closed.Load() {
		return
	}
	m.started = true
	go func() {
		defer close(m.done)
		ticker := time.NewTicker(m.cfg.TickInterval)
		defer ticker.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-ticker.C:
				m.Tick()
			}
		}
	}()
}

// Close stops the background expirer (waiting for an in-flight pass to
// finish) and rejects further Acquire/Renew/Release calls; a Start after (or
// racing) Close never launches an expirer. It is idempotent. Active leases
// are not released; callers that want a clean shutdown drain them first.
func (m *Manager) Close() {
	m.lifeMu.Lock()
	m.closed.Store(true)
	wasStarted := m.started
	if !m.stopClosed {
		close(m.stop)
		m.stopClosed = true
	}
	m.lifeMu.Unlock()
	if wasStarted {
		<-m.done
	}
}

// Stats is the manager's observability snapshot.
type Stats struct {
	// Active is the number of currently held leases.
	Active int64 `json:"active"`
	// Acquires, Renews and Releases count successful operations.
	Acquires uint64 `json:"acquires"`
	Renews   uint64 `json:"renews"`
	Releases uint64 `json:"releases"`
	// Expirations counts leases reaped by the expirer.
	Expirations uint64 `json:"expirations"`
	// FailedAcquires counts Acquires that failed with ErrFull.
	FailedAcquires uint64 `json:"failed_acquires"`
	// RenewRaces and ReleaseRaces count stale-token (or not-leased)
	// rejections: a renewer or releaser losing the race against expiry or
	// reissue.
	RenewRaces   uint64 `json:"renew_races"`
	ReleaseRaces uint64 `json:"release_races"`
	// OrphansReclaimed counts bits the cross-check sweep reclaimed because
	// they stayed set with no lease record.
	OrphansReclaimed uint64 `json:"orphans_reclaimed"`
	// Ticks counts completed expirer passes.
	Ticks uint64 `json:"ticks"`
}

// Stats returns a point-in-time snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Active:           m.active.Load(),
		Acquires:         m.acquires.Load(),
		Renews:           m.renews.Load(),
		Releases:         m.releases.Load(),
		Expirations:      m.expirations.Load(),
		FailedAcquires:   m.failedAcquires.Load(),
		RenewRaces:       m.renewRaces.Load(),
		ReleaseRaces:     m.releaseRaces.Load(),
		OrphansReclaimed: m.orphans.Load(),
		Ticks:            m.ticks.Load(),
	}
}

// ProbeStats merges the registration-cost statistics of every handle the
// manager ever created, connecting the lease layer to the repository's
// probe-count reporting. Handles are not safe for concurrent use, so this
// must only be called on a quiesced manager (no in-flight operations and the
// expirer stopped), e.g. after Close.
func (m *Manager) ProbeStats() activity.ProbeStats {
	m.poolMu.Lock()
	defer m.poolMu.Unlock()
	var merged activity.ProbeStats
	for _, h := range m.all {
		merged.Merge(h.Stats())
	}
	return merged
}

// Verify cross-checks the lease table against the bitmap state in both
// directions and returns the disagreements: set bits with no active lease
// (orphan candidates the sweep would reclaim) and active leases whose bit is
// clear (a double free bypassing the manager). Like Collect it is not an
// atomic snapshot, so call it on a quiesced manager for exact results; nil
// slices mean agreement. Arrays without bitmap views report no orphans.
func (m *Manager) Verify() (orphanBits, missingBits []int) {
	covered := make(map[int]bool)
	for _, v := range m.views {
		v.space.ForEachSet(v.base, func(name int) bool {
			covered[name] = true
			e := &m.entries[name]
			e.mu.Lock()
			if !e.active {
				orphanBits = append(orphanBits, name)
			}
			e.mu.Unlock()
			return true
		})
	}
	if len(m.views) == 0 {
		return nil, nil
	}
	for name := range m.entries {
		e := &m.entries[name]
		e.mu.Lock()
		if e.active && !covered[name] {
			missingBits = append(missingBits, name)
		}
		e.mu.Unlock()
	}
	return orphanBits, missingBits
}
