package lease

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/shard"
)

// TestCollectDuringStealsAndExpiry is the end-to-end collect-validity test
// for the full stack: a sharded array under enough load that home shards
// overflow and Gets steal across shards, a background expirer reaping
// abandoned leases, and concurrent Collect scans. It asserts the paper's
// validity guarantee at the lease level — a Collect may only ever return
// names that some lease held (no invented names, no duplicates within one
// scan) — and that after quiescing and expiring everything, the system
// drains to exactly empty with the lease table and bitmaps in agreement.
// It is designed to run under -race.
func TestCollectDuringStealsAndExpiry(t *testing.T) {
	const (
		shards  = 4
		workers = 8
		tick    = 2 * time.Millisecond
		runFor  = 300 * time.Millisecond
	)
	// Deliberately unbalanced shards (one big, three tiny, via the NewShard
	// factory): handles homed on the tiny shards overflow almost immediately
	// and steal into the big one, so the cross-shard path runs continuously
	// instead of only at total saturation.
	arr := shard.MustNew(shard.Config{Shards: shards, Capacity: 32,
		NewShard: func(sh, capacity int, seed uint64) (activity.Array, error) {
			if sh == 0 {
				return core.New(core.Config{Capacity: 16, Seed: seed})
			}
			return core.New(core.Config{Capacity: 2, Seed: seed})
		}})
	m := MustNewManager(arr, Config{TickInterval: tick, WheelBuckets: 16})
	m.Start()
	defer m.Close()

	// everIssued[name] is set the moment a lease on name is granted; a
	// collected name that was never issued would violate validity outright.
	everIssued := make([]atomic.Bool, arr.Size())

	var (
		stop     atomic.Bool
		wg       sync.WaitGroup
		abandons atomic.Uint64
		steals   atomic.Uint64
	)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rounds := 0
			for !stop.Load() {
				rounds++
				l, err := m.Acquire(4 * tick)
				if err != nil {
					if errors.Is(err, activity.ErrFull) {
						// Abandoned leases hold slots until expiry; yield and
						// let the expirer drain.
						time.Sleep(tick)
						continue
					}
					t.Errorf("worker %d: Acquire: %v", w, err)
					return
				}
				everIssued[l.Name].Store(true)
				if rounds%5 == 0 {
					// Crash: walk away without releasing. The expirer must
					// reclaim the slot; a later stale Release must bounce.
					abandons.Add(1)
					continue
				}
				if rounds%3 == 0 {
					if _, err := m.Renew(l.Name, l.Token, 4*tick); err != nil {
						t.Errorf("worker %d: live Renew: %v", w, err)
						return
					}
				}
				if err := m.Release(l.Name, l.Token); err != nil {
					t.Errorf("worker %d: live Release: %v", w, err)
					return
				}
			}
		}()
	}

	// Track steal volume so the test actually fails if the scenario stops
	// exercising the cross-shard path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			var total uint64
			for _, s := range arr.ShardStats() {
				total += s.StealsIn
			}
			steals.Store(total)
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Concurrent collectors: validity within every single scan.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]int, 0, arr.Size())
			seen := make(map[int]bool, arr.Size())
			for !stop.Load() {
				buf = m.Collect(buf[:0])
				clear(seen)
				for _, name := range buf {
					if name < 0 || name >= arr.Size() {
						t.Errorf("Collect returned name %d outside namespace [0, %d)", name, arr.Size())
						return
					}
					if seen[name] {
						t.Errorf("Collect returned duplicate name %d in one scan", name)
						return
					}
					seen[name] = true
					if !everIssued[name].Load() {
						t.Errorf("Collect returned name %d that no lease ever held", name)
						return
					}
				}
			}
		}()
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()

	if abandons.Load() == 0 {
		t.Fatal("scenario never abandoned a lease; expiry path not exercised")
	}
	if steals.Load() == 0 {
		t.Fatal("scenario never stole across shards; steal path not exercised")
	}

	// Quiesce: everything left is abandoned; two tick windows past the
	// longest TTL must drain the system to empty.
	deadline := time.Now().Add(2 * time.Second)
	for m.Active() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("expirer failed to drain %d abandoned leases", m.Active())
		}
		time.Sleep(tick)
	}
	if names := m.Collect(nil); len(names) != 0 {
		t.Fatalf("Collect after drain = %v, want empty", names)
	}
	if orphans, missing := m.Verify(); len(orphans) != 0 || len(missing) != 0 {
		t.Fatalf("Verify after drain: orphan bits %v, missing bits %v", orphans, missing)
	}
	s := m.Stats()
	if s.Expirations < abandons.Load() {
		t.Fatalf("Expirations = %d, want at least the %d abandoned leases", s.Expirations, abandons.Load())
	}
	if s.Acquires != s.Releases+s.Expirations {
		t.Fatalf("ledger mismatch: %d acquires vs %d releases + %d expirations", s.Acquires, s.Releases, s.Expirations)
	}
}
