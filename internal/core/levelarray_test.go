package core

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/arraytest"
	"github.com/levelarray/levelarray/internal/balance"
	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/tas"
)

func TestConformance(t *testing.T) {
	arraytest.Run(t, func(capacity int) activity.Array {
		return MustNew(Config{Capacity: capacity, Seed: 42})
	})
}

func TestConformanceCompactSlots(t *testing.T) {
	arraytest.Run(t, func(capacity int) activity.Array {
		return MustNew(Config{Capacity: capacity, Seed: 7, CompactSlots: true})
	})
}

func TestConformancePaddedBitmap(t *testing.T) {
	arraytest.Run(t, func(capacity int) activity.Array {
		return MustNew(Config{Capacity: capacity, Seed: 29, Space: SpaceBitmapPadded})
	})
}

func TestConformancePaddedSlots(t *testing.T) {
	arraytest.Run(t, func(capacity int) activity.Array {
		return MustNew(Config{Capacity: capacity, Seed: 31, Space: SpacePadded})
	})
}

// TestConformanceInstrumented runs the suite with counting decorators on both
// spaces, i.e. entirely on the interface path.
func TestConformanceInstrumented(t *testing.T) {
	arraytest.Run(t, func(capacity int) activity.Array {
		return MustNew(Config{Capacity: capacity, Seed: 37, Instrument: func(role SpaceRole, inner tas.Space) tas.Space {
			return tas.NewCountingSpace(inner)
		}})
	})
}

func TestConformanceLehmerRNG(t *testing.T) {
	arraytest.Run(t, func(capacity int) activity.Array {
		return MustNew(Config{Capacity: capacity, Seed: 11, RNG: rng.KindLehmer})
	})
}

func TestConformanceEpsilonHalf(t *testing.T) {
	arraytest.Run(t, func(capacity int) activity.Array {
		return MustNew(Config{Capacity: capacity, Seed: 3, Epsilon: 0.5})
	})
}

func TestConformanceSoftwareTAS(t *testing.T) {
	arraytest.Run(t, func(capacity int) activity.Array {
		return MustNew(Config{Capacity: capacity, Seed: 17, SoftwareTAS: true})
	})
}

func TestSoftwareTASRejectsCompactSlots(t *testing.T) {
	if _, err := New(Config{Capacity: 8, SoftwareTAS: true, CompactSlots: true}); err == nil {
		t.Fatal("SoftwareTAS combined with CompactSlots accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"defaults", Config{Capacity: 8}, false},
		{"explicit", Config{Capacity: 8, Epsilon: 1, ProbesPerBatch: 2, RNG: rng.KindLehmer}, false},
		{"probe-schedule", Config{Capacity: 8, ProbeSchedule: []int{2, 1, 1}}, false},
		{"zero-capacity", Config{}, true},
		{"negative-capacity", Config{Capacity: -1}, true},
		{"negative-epsilon", Config{Capacity: 8, Epsilon: -1}, true},
		{"bad-probe-schedule", Config{Capacity: 8, ProbeSchedule: []int{1, 0}}, true},
		{"negative-probes", Config{Capacity: 8, ProbesPerBatch: -3}, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.cfg)
			if (err != nil) != c.wantErr {
				t.Fatalf("New(%+v) error = %v, wantErr %v", c.cfg, err, c.wantErr)
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(Config{Capacity: 0})
}

func TestGeometryMatchesPaper(t *testing.T) {
	const n = 1024
	la := MustNew(Config{Capacity: n})
	layout := la.Layout()
	if layout.Batch(0).Size != 3*n/2 {
		t.Fatalf("batch 0 size = %d, want %d", layout.Batch(0).Size, 3*n/2)
	}
	if la.MainSpace().Len() != layout.MainSize() {
		t.Fatalf("main space %d slots, layout says %d", la.MainSpace().Len(), layout.MainSize())
	}
	if la.BackupSpace().Len() != n {
		t.Fatalf("backup space %d slots, want %d", la.BackupSpace().Len(), n)
	}
	if la.Size() != layout.MainSize()+n {
		t.Fatalf("Size() = %d, want %d", la.Size(), layout.MainSize()+n)
	}
	if la.Capacity() != n {
		t.Fatalf("Capacity() = %d, want %d", la.Capacity(), n)
	}
}

// TestFullRegistrationWithinMainArray registers the full capacity n and
// verifies the main 2n-slot array absorbs everyone (the backup stays empty),
// which is the configuration the paper benchmarks.
func TestFullRegistrationWithinMainArray(t *testing.T) {
	const n = 128
	la := MustNew(Config{Capacity: n, Seed: 5})
	handles := make([]activity.Handle, n)
	for i := range handles {
		handles[i] = la.Handle()
		name, err := handles[i].Get()
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if name >= la.Layout().MainSize() {
			t.Fatalf("Get %d landed in the backup array (name %d)", i, name)
		}
	}
	occ := la.Occupancy()
	if occ.Total() != n {
		t.Fatalf("occupancy total = %d, want %d", occ.Total(), n)
	}
	if occ[la.Layout().NumBatches()] != 0 {
		t.Fatalf("backup occupancy = %d, want 0", occ[la.Layout().NumBatches()])
	}
	for _, h := range handles {
		if err := h.Free(); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
	if la.Occupancy().Total() != 0 {
		t.Fatal("occupancy nonzero after releasing everything")
	}
}

// TestOverSubscription registers more participants than the capacity. The
// LevelArray still serves them from its 3n-slot namespace (2n main + n
// backup); only beyond that does Get report ErrFull.
func TestOverSubscription(t *testing.T) {
	const n = 16
	la := MustNew(Config{Capacity: n, Seed: 9})
	total := la.Size()

	handles := make([]activity.Handle, 0, total)
	for i := 0; i < total; i++ {
		h := la.Handle()
		if _, err := h.Get(); err != nil {
			t.Fatalf("Get %d of %d: %v", i, total, err)
		}
		handles = append(handles, h)
	}
	extra := la.Handle()
	if _, err := extra.Get(); err != activity.ErrFull {
		t.Fatalf("Get beyond namespace: err = %v, want ErrFull", err)
	}
	// Releasing one slot makes room again.
	if err := handles[0].Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if _, err := extra.Get(); err != nil {
		t.Fatalf("Get after a Free: %v", err)
	}
}

// TestBackupPathUnderInjectedLosses forces every main-array probe to lose and
// checks that Get falls back to the backup array, returns names above the
// main size, and records the backup usage in its statistics. The loss
// injection goes through the Instrument decorator, which is the supported way
// to wrap the slot spaces (and disables the dispatch-free fast path for the
// wrapped space).
func TestBackupPathUnderInjectedLosses(t *testing.T) {
	const n = 32
	var flaky *tas.FlakySpace
	la := MustNew(Config{Capacity: n, Seed: 13, Instrument: func(role SpaceRole, inner tas.Space) tas.Space {
		if role != RoleMain {
			return inner
		}
		flaky = tas.NewFlakySpace(inner, 0)
		return flaky
	}})
	flaky.DenyRange(0, la.Layout().MainSize())

	h := la.Handle().(*Handle)
	name, err := h.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if name < la.Layout().MainSize() {
		t.Fatalf("name %d is in the main array despite denied probes", name)
	}
	if !h.LastUsedBackup() {
		t.Fatal("LastUsedBackup() = false after a backup acquisition")
	}
	if h.Stats().BackupOps != 1 {
		t.Fatalf("BackupOps = %d, want 1", h.Stats().BackupOps)
	}
	// Probes: one per batch (c=1) plus one backup probe.
	wantProbes := la.Layout().NumBatches() + 1
	if h.LastProbes() != wantProbes {
		t.Fatalf("LastProbes = %d, want %d", h.LastProbes(), wantProbes)
	}
	// Free must release the backup slot.
	if err := h.Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if got := la.Collect(nil); len(got) != 0 {
		t.Fatalf("Collect after Free = %v, want empty", got)
	}
}

// TestErrFullProbeCount exercises the pathological everything-denied case.
func TestErrFullProbeCount(t *testing.T) {
	const n = 8
	spaces := make(map[SpaceRole]*tas.FlakySpace)
	la := MustNew(Config{Capacity: n, Seed: 1, Instrument: func(role SpaceRole, inner tas.Space) tas.Space {
		fs := tas.NewFlakySpace(inner, 0)
		spaces[role] = fs
		return fs
	}})
	spaces[RoleMain].DenyRange(0, la.Layout().MainSize())
	spaces[RoleBackup].DenyRange(0, n)

	h := la.Handle().(*Handle)
	if _, err := h.Get(); err != activity.ErrFull {
		t.Fatalf("Get = %v, want ErrFull", err)
	}
	// One probe per batch, a full backup scan, and a full main-array sweep.
	wantProbes := la.Layout().NumBatches() + n + la.Layout().MainSize()
	if h.LastProbes() != wantProbes {
		t.Fatalf("LastProbes = %d, want %d", h.LastProbes(), wantProbes)
	}
	// A failed Get must not be recorded as a completed operation, but it must
	// be recorded: the attempt's probes feed the totals and FailedOps tallies
	// the failure, so harness error accounting does not undercount work.
	s := h.Stats()
	if s.Ops != 0 {
		t.Fatalf("Stats.Ops = %d after failed Get, want 0", s.Ops)
	}
	if s.FailedOps != 1 {
		t.Fatalf("Stats.FailedOps = %d after failed Get, want 1", s.FailedOps)
	}
	if s.TotalProbes != uint64(wantProbes) {
		t.Fatalf("Stats.TotalProbes = %d after failed Get, want %d", s.TotalProbes, wantProbes)
	}
	if s.MaxProbes != uint64(wantProbes) {
		t.Fatalf("Stats.MaxProbes = %d after failed Get, want %d", s.MaxProbes, wantProbes)
	}
	if s.BackupOps != 1 {
		t.Fatalf("Stats.BackupOps = %d after failed Get, want 1", s.BackupOps)
	}
	if s.Attempts() != 1 {
		t.Fatalf("Stats.Attempts() = %d after failed Get, want 1", s.Attempts())
	}
}

// TestProbeSchedule verifies that per-batch probe counts are honored: with
// every slot of batch 0 denied, a Get must perform exactly c_0 probes before
// moving to batch 1.
func TestProbeSchedule(t *testing.T) {
	const n = 64
	var flaky *tas.FlakySpace
	la := MustNew(Config{Capacity: n, Seed: 21, ProbeSchedule: []int{3, 2}, Instrument: func(role SpaceRole, inner tas.Space) tas.Space {
		if role != RoleMain {
			return inner
		}
		flaky = tas.NewFlakySpace(inner, 0)
		return flaky
	}})
	b0 := la.Layout().Batch(0)
	flaky.DenyRange(b0.Offset, b0.Offset+b0.Size)

	h := la.Handle().(*Handle)
	name, err := h.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got := la.Layout().BatchOf(name); got == 0 {
		t.Fatalf("name %d landed in denied batch 0", name)
	}
	// 3 failed probes in batch 0, then success within batch 1's 2 probes.
	if h.LastProbes() < 4 || h.LastProbes() > 5 {
		t.Fatalf("LastProbes = %d, want 4 or 5", h.LastProbes())
	}
}

func TestProbesForScheduleExtension(t *testing.T) {
	cfg := Config{Capacity: 8, ProbeSchedule: []int{4, 2}}.withDefaults()
	if got := cfg.probesFor(0); got != 4 {
		t.Fatalf("probesFor(0) = %d, want 4", got)
	}
	if got := cfg.probesFor(1); got != 2 {
		t.Fatalf("probesFor(1) = %d, want 2", got)
	}
	// Batches beyond the schedule reuse the last entry.
	if got := cfg.probesFor(7); got != 2 {
		t.Fatalf("probesFor(7) = %d, want 2", got)
	}
	uniform := Config{Capacity: 8, ProbesPerBatch: 3}.withDefaults()
	if got := uniform.probesFor(5); got != 3 {
		t.Fatalf("uniform probesFor(5) = %d, want 3", got)
	}
}

// TestAverageProbesNearPaperValue checks the headline empirical claim: with
// half the array pre-filled (the paper's 50% pre-fill configuration), the
// average number of probes per Get stays below 2 and the worst case stays
// small.
func TestAverageProbesNearPaperValue(t *testing.T) {
	const (
		n      = 256
		rounds = 200
	)
	la := MustNew(Config{Capacity: n, Seed: 77})

	// Pre-fill: half the capacity stays registered for the whole test.
	resident := make([]activity.Handle, n/2)
	for i := range resident {
		resident[i] = la.Handle()
		if _, err := resident[i].Get(); err != nil {
			t.Fatalf("pre-fill Get: %v", err)
		}
	}

	churn := la.Handle()
	for i := 0; i < rounds; i++ {
		if _, err := churn.Get(); err != nil {
			t.Fatalf("Get: %v", err)
		}
		if err := churn.Free(); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
	s := churn.Stats()
	if s.Mean() >= 3 {
		t.Fatalf("average probes %.3f, expected below 3 at 50%% load", s.Mean())
	}
	if s.MaxProbes > uint64(la.Layout().NumBatches()) {
		t.Fatalf("worst case %d probes exceeds the number of batches %d",
			s.MaxProbes, la.Layout().NumBatches())
	}
	if s.BackupOps != 0 {
		t.Fatalf("backup used %d times in a half-loaded array", s.BackupOps)
	}
}

// TestDistributionSkewsTowardsBatchZero verifies the qualitative shape of the
// batch distribution the analysis predicts: under steady churn at 50% load,
// the overwhelming majority of acquisitions land in batch 0.
func TestDistributionSkewsTowardsBatchZero(t *testing.T) {
	const (
		n      = 512
		rounds = 2000
	)
	la := MustNew(Config{Capacity: n, Seed: 101})
	resident := make([]activity.Handle, n/2)
	for i := range resident {
		resident[i] = la.Handle()
		if _, err := resident[i].Get(); err != nil {
			t.Fatalf("pre-fill Get: %v", err)
		}
	}
	churn := la.Handle()
	batchHits := make([]int, la.Layout().NumBatches()+1)
	for i := 0; i < rounds; i++ {
		name, err := churn.Get()
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		batchHits[la.Layout().BatchOf(name)]++
		if err := churn.Free(); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
	frac0 := float64(batchHits[0]) / rounds
	if frac0 < 0.55 {
		t.Fatalf("only %.2f of acquisitions landed in batch 0; distribution %v", frac0, batchHits)
	}
	deep := 0
	for j := 3; j < len(batchHits); j++ {
		deep += batchHits[j]
	}
	if float64(deep)/rounds > 0.05 {
		t.Fatalf("%.4f of acquisitions landed in batch 3 or deeper; distribution %v",
			float64(deep)/rounds, batchHits)
	}
}

func TestOccupancyMatchesBalanceMeasurement(t *testing.T) {
	const n = 64
	la := MustNew(Config{Capacity: n, Seed: 3})
	// Register a quarter of the capacity: a lightly loaded array, which the
	// analysis predicts is fully balanced essentially always.
	handles := make([]activity.Handle, n/4)
	for i := range handles {
		handles[i] = la.Handle()
		if _, err := handles[i].Get(); err != nil {
			t.Fatalf("Get: %v", err)
		}
	}
	occ := la.Occupancy()
	direct := balance.MeasureOccupancy(la.Layout(), la.MainSpace())
	for j := 0; j < la.Layout().NumBatches(); j++ {
		if occ[j] != direct[j] {
			t.Fatalf("batch %d: Occupancy()=%d, MeasureOccupancy=%d", j, occ[j], direct[j])
		}
	}
	if occ.Total() != n/4 {
		t.Fatalf("occupancy total = %d, want %d", occ.Total(), n/4)
	}
	if !balance.FullyBalanced(la.Layout(), occ) {
		t.Fatalf("lightly loaded array should be fully balanced: %v", occ)
	}
}

func TestHandleIndependence(t *testing.T) {
	la := MustNew(Config{Capacity: 8, Seed: 19})
	a := la.Handle()
	b := la.Handle()
	nameA, err := a.Get()
	if err != nil {
		t.Fatalf("a.Get: %v", err)
	}
	nameB, err := b.Get()
	if err != nil {
		t.Fatalf("b.Get: %v", err)
	}
	if nameA == nameB {
		t.Fatalf("handles received the same name %d", nameA)
	}
	if err := a.Free(); err != nil {
		t.Fatalf("a.Free: %v", err)
	}
	// b's registration must be unaffected by a's Free.
	if got, held := b.Name(); !held || got != nameB {
		t.Fatalf("b.Name() = (%d, %v) after a.Free, want (%d, true)", got, held, nameB)
	}
	if err := b.Free(); err != nil {
		t.Fatalf("b.Free: %v", err)
	}
}

// Property: arbitrary interleavings of Get/Free across a handful of handles
// never violate uniqueness, and Collect always reflects exactly the held
// names.
func TestQuickSequentialLinearizability(t *testing.T) {
	prop := func(script []uint8) bool {
		const n = 8
		la := MustNew(Config{Capacity: n, Seed: 23})
		handles := make([]activity.Handle, n)
		for i := range handles {
			handles[i] = la.Handle()
		}
		held := make(map[int]int) // name -> handle index
		for _, b := range script {
			idx := int(b) % n
			h := handles[idx]
			if name, ok := h.Name(); ok {
				if err := h.Free(); err != nil {
					return false
				}
				delete(held, name)
			} else {
				name, err := h.Get()
				if err != nil {
					return false
				}
				if _, dup := held[name]; dup {
					return false
				}
				held[name] = idx
			}
		}
		collected := la.Collect(nil)
		if len(collected) != len(held) {
			return false
		}
		for _, name := range collected {
			if _, ok := held[name]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: for arbitrary capacities and seeds, registering k <= n
// participants yields k distinct names, an occupancy total of k, and a
// Collect of exactly those names.
func TestQuickRegistrationInvariants(t *testing.T) {
	prop := func(nRaw uint8, seed uint64) bool {
		n := int(nRaw%200) + 1
		k := n/2 + 1
		la := MustNew(Config{Capacity: n, Seed: seed})
		names := make(map[int]bool, k)
		for i := 0; i < k; i++ {
			h := la.Handle()
			name, err := h.Get()
			if err != nil {
				return false
			}
			if name < 0 || name >= la.Size() || names[name] {
				return false
			}
			names[name] = true
		}
		if la.Occupancy().Total() != k {
			return false
		}
		collected := la.Collect(nil)
		if len(collected) != k {
			return false
		}
		for _, name := range collected {
			if !names[name] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a probe schedule of at least 4 trials in the first batches
// (closer to the analysis's large constants) and load at most n/2, the array
// remains fully balanced, matching Proposition 3's prediction.
func TestQuickBalancedUnderModerateLoad(t *testing.T) {
	prop := func(seed uint64) bool {
		const n = 256
		la := MustNew(Config{Capacity: n, Seed: seed, ProbesPerBatch: 4})
		for i := 0; i < n/2; i++ {
			h := la.Handle()
			if _, err := h.Get(); err != nil {
				return false
			}
		}
		return balance.FullyBalanced(la.Layout(), la.Occupancy())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentHandleCreation(t *testing.T) {
	la := MustNew(Config{Capacity: 64, Seed: 55})
	const workers = 32
	var wg sync.WaitGroup
	names := make([]int, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := la.Handle()
			name, err := h.Get()
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			names[w] = name
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	seen := make(map[int]bool)
	for _, name := range names {
		if seen[name] {
			t.Fatalf("duplicate name %d", name)
		}
		seen[name] = true
	}
}

// TestFastPathSelection pins down when the dispatch-free bitmap path is
// active: on by default, off for unpacked substrates, software TAS and
// instrumented arrays — unless the decorator declines to wrap.
func TestFastPathSelection(t *testing.T) {
	identity := func(role SpaceRole, inner tas.Space) tas.Space { return inner }
	wrap := func(role SpaceRole, inner tas.Space) tas.Space { return tas.NewCountingSpace(inner) }
	cases := []struct {
		name string
		cfg  Config
		fast bool
	}{
		{"default", Config{Capacity: 64}, true},
		{"bitmap-padded", Config{Capacity: 64, Space: SpaceBitmapPadded}, true},
		{"padded", Config{Capacity: 64, Space: SpacePadded}, false},
		{"compact", Config{Capacity: 64, Space: SpaceCompact}, false},
		{"compact-legacy", Config{Capacity: 64, CompactSlots: true}, false},
		{"software", Config{Capacity: 64, SoftwareTAS: true}, false},
		{"instrumented", Config{Capacity: 64, Instrument: wrap}, false},
		{"identity-instrument", Config{Capacity: 64, Instrument: identity}, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			la := MustNew(c.cfg)
			if got := la.fastMain != nil && la.fastBackup != nil; got != c.fast {
				t.Fatalf("fast path active = %v, want %v", got, c.fast)
			}
		})
	}
}

// TestCollectEquivalentAcrossSubstrates runs the same seeded operation
// sequence on every substrate and checks that Collect returns the same set
// of names, so the word-at-a-time scan and the per-slot scan agree.
func TestCollectEquivalentAcrossSubstrates(t *testing.T) {
	const n = 100 // main size not divisible by 64, tail word partial
	collectFor := func(space SpaceKind) []int {
		la := MustNew(Config{Capacity: n, Seed: 99, Space: space})
		handles := make([]activity.Handle, n/2)
		for i := range handles {
			handles[i] = la.Handle()
			if _, err := handles[i].Get(); err != nil {
				t.Fatalf("space %v: Get: %v", space, err)
			}
		}
		for i := 0; i < len(handles); i += 3 {
			if err := handles[i].Free(); err != nil {
				t.Fatalf("space %v: Free: %v", space, err)
			}
		}
		return la.Collect(nil)
	}
	want := collectFor(SpaceBitmap)
	for _, space := range []SpaceKind{SpaceBitmapPadded, SpacePadded, SpaceCompact} {
		got := collectFor(space)
		if len(got) != len(want) {
			t.Fatalf("space %v: Collect returned %d names, bitmap returned %d", space, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("space %v: Collect[%d] = %d, bitmap has %d", space, i, got[i], want[i])
			}
		}
	}
}

// TestAdoptPaddingSlot adopts a word-alignment padding slot (one that belongs
// to no batch): it must be acquirable, collectable and freeable like any
// other main-array name, with its occupancy attributed to the preceding
// batch.
func TestAdoptPaddingSlot(t *testing.T) {
	const n = 1000 // layout has alignment padding between batches 1 and 2
	la := MustNew(Config{Capacity: n})
	layout := la.Layout()
	if layout.PaddingSlots() == 0 {
		t.Skip("layout has no padding at this capacity")
	}
	// Find the first gap between consecutive batches.
	pad := -1
	for i := 1; i < layout.NumBatches(); i++ {
		prev := layout.Batch(i - 1)
		if end := prev.Offset + prev.Size; end < layout.Batch(i).Offset {
			pad = end
			break
		}
	}
	if pad < 0 {
		t.Fatalf("PaddingSlots=%d but no inter-batch gap found", layout.PaddingSlots())
	}
	h := la.Handle().(*Handle)
	if err := h.Adopt(pad); err != nil {
		t.Fatalf("Adopt(%d): %v", pad, err)
	}
	collected := la.Collect(nil)
	if len(collected) != 1 || collected[0] != pad {
		t.Fatalf("Collect = %v, want [%d]", collected, pad)
	}
	occ := la.Occupancy()
	if occ.Total() != 1 {
		t.Fatalf("occupancy total = %d, want 1", occ.Total())
	}
	if err := h.Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if la.Occupancy().Total() != 0 {
		t.Fatal("padding slot still occupied after Free")
	}
}

func TestStatsMeanConsistentWithTrials(t *testing.T) {
	la := MustNew(Config{Capacity: 32, Seed: 4})
	h := la.Handle()
	var manualTotal int
	const rounds = 128
	for i := 0; i < rounds; i++ {
		if _, err := h.Get(); err != nil {
			t.Fatalf("Get: %v", err)
		}
		manualTotal += h.LastProbes()
		if err := h.Free(); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
	s := h.Stats()
	if s.TotalProbes != uint64(manualTotal) {
		t.Fatalf("TotalProbes = %d, manual sum = %d", s.TotalProbes, manualTotal)
	}
	if math.Abs(s.Mean()-float64(manualTotal)/rounds) > 1e-9 {
		t.Fatalf("Mean = %v, want %v", s.Mean(), float64(manualTotal)/rounds)
	}
}
