package core

import (
	"fmt"
	"sync/atomic"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/balance"
	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/tas"
)

// LevelArray is the paper's long-lived renaming algorithm. It is safe for
// concurrent use: any number of goroutines may operate on distinct handles
// while others Collect.
//
// Names returned by Get are indices in [0, Size()): indices below
// Layout().MainSize() identify main-array slots grouped into batches, and
// indices at or above it identify backup-array slots. With honest randomness
// the backup is essentially never used; it exists so Get is wait-free with a
// deterministic worst case of O(n) probes.
//
// On the default bitmap substrate with no Instrument decorator, every Get,
// Free and Adopt operates directly on concrete *tas.BitmapSpace values
// (fastMain/fastBackup below), so the hot path contains no tas.Space
// interface dispatch; Collect and Occupancy scan 64 slots per atomic load.
// Selecting an unpacked substrate or installing instrumentation routes the
// same operations through the tas.Space interface instead.
type LevelArray struct {
	cfg    Config
	layout *balance.Layout

	// main and backup are the spaces every operation logically targets,
	// possibly wrapped by the Instrument decorator.
	main   tas.Space
	backup tas.Space

	// fastMain and fastBackup are the dispatch-free view: non-nil exactly
	// when the corresponding space is an uninstrumented *tas.BitmapSpace,
	// in which case they alias main/backup.
	fastMain   *tas.BitmapSpace
	fastBackup *tas.BitmapSpace

	// mainClaim and backupClaim are the word-claim views of main/backup:
	// non-nil when the (possibly instrumented) space supports tas.Claimer.
	// They back the word probe mode and the word-stepped backup and
	// last-resort sweeps on the interface-dispatch path.
	mainClaim   tas.Claimer
	backupClaim tas.Claimer

	seeds     *rng.SeedSequence
	handleIDs atomic.Uint64
}

var _ activity.Array = (*LevelArray)(nil)

// New builds a LevelArray from cfg. It returns an error if the configuration
// is invalid.
func New(cfg Config) (*LevelArray, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	layout, err := balance.NewLayout(cfg.Capacity, cfg.Epsilon)
	if err != nil {
		return nil, fmt.Errorf("core: building layout: %w", err)
	}
	la := &LevelArray{
		cfg:    cfg,
		layout: layout,
		main:   cfg.newSpace(RoleMain, layout.MainSize(), cfg.Seed^0xA11),
		backup: cfg.newSpace(RoleBackup, layout.BackupSize(), cfg.Seed^0xB22),
		seeds:  rng.NewSeedSequence(cfg.Seed),
	}
	// The fast path keys off the dynamic type, so an Instrument decorator
	// that returns the inner space unchanged keeps dispatch-free operation.
	la.fastMain, _ = la.main.(*tas.BitmapSpace)
	la.fastBackup, _ = la.backup.(*tas.BitmapSpace)
	la.mainClaim, _ = la.main.(tas.Claimer)
	la.backupClaim, _ = la.backup.(tas.Claimer)
	if cfg.Probe == ProbeWord && (la.mainClaim == nil || la.backupClaim == nil) {
		return nil, fmt.Errorf("core: Probe %q requires word-claim-capable slot spaces; the Instrument decorator returned a space without tas.Claimer", ProbeWord)
	}
	return la, nil
}

// MustNew is New but panics on error; it is intended for tests and examples
// with compile-time constant configurations.
func MustNew(cfg Config) *LevelArray {
	la, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return la
}

// Capacity returns the contention bound n.
func (la *LevelArray) Capacity() int { return la.cfg.Capacity }

// Size returns the total namespace size (main array plus backup array).
func (la *LevelArray) Size() int { return la.layout.TotalSize() }

// Layout returns the batch geometry of the main array.
func (la *LevelArray) Layout() *balance.Layout { return la.layout }

// MainSpace returns the main slot space (instrumented view, if any). It is
// exported within the module so the balance analyzer and the healing
// experiment can observe (and, for the degraded-start experiment, pre-fill)
// the raw slots.
func (la *LevelArray) MainSpace() tas.Space { return la.main }

// BackupSpace returns the backup slot space.
func (la *LevelArray) BackupSpace() tas.Space { return la.backup }

// Handle returns a new per-participant handle. Handles are not safe for
// concurrent use; each goroutine (or simulated process) must own its handle.
func (la *LevelArray) Handle() activity.Handle {
	return &Handle{
		arr: la,
		id:  la.handleIDs.Add(1),
		rng: rng.New(la.cfg.RNG, la.seeds.Next()),
	}
}

// Collect appends every currently observed held name to dst and returns the
// extended slice. It satisfies the paper's validity property (every returned
// name was held at some point during the scan) but is not an atomic snapshot.
// On the bitmap substrate the scan reads 64 slots per atomic load and peels
// set bits with TrailingZeros64.
func (la *LevelArray) Collect(dst []int) []int {
	mainSize := la.layout.MainSize()
	if la.fastMain != nil {
		dst = la.fastMain.AppendSet(dst, 0)
	} else {
		for i := 0; i < mainSize; i++ {
			if la.main.Read(i) {
				dst = append(dst, i)
			}
		}
	}
	if la.fastBackup != nil {
		return la.fastBackup.AppendSet(dst, mainSize)
	}
	for i := 0; i < la.backup.Len(); i++ {
		if la.backup.Read(i) {
			dst = append(dst, mainSize+i)
		}
	}
	return dst
}

// Occupancy measures the per-batch occupancy of the array (backup occupancy
// in the final entry). Like Collect it is not an atomic snapshot. Bitmap
// substrates are counted word-at-a-time.
func (la *LevelArray) Occupancy() balance.Occupancy {
	occ := balance.MeasureOccupancy(la.layout, la.main)
	occ[la.layout.NumBatches()] = tas.Occupancy(la.backup)
	return occ
}

// Handle is the per-participant endpoint of a LevelArray. The zero value is
// not usable; obtain handles from LevelArray.Handle.
type Handle struct {
	arr  *LevelArray
	id   uint64
	rng  rng.Source
	name int
	held bool

	lastProbes int
	lastBackup bool
	stats      activity.ProbeStats
}

var (
	_ activity.Handle     = (*Handle)(nil)
	_ activity.Identified = (*Handle)(nil)
)

// ID returns the handle's stable identity: a counter assigned at Handle()
// time, unique within the array and never reused. The lease manager embeds it
// in fencing tokens so a token records which pooled handle holds the slot.
func (h *Handle) ID() uint64 { return h.id }

// Get registers the participant and returns the acquired name.
//
// The probe sequence follows Section 4: for each batch i in increasing order
// the handle performs c_i test-and-set operations on uniformly random slots
// of that batch, stopping at the first win. If every batch fails, the handle
// scans the backup array linearly, and as a last resort sweeps the main
// array. A Get that exhausts the whole namespace returns ErrFull and records
// the failed attempt (including its full probe count) in the handle's
// statistics.
func (h *Handle) Get() (int, error) {
	if h.held {
		return 0, activity.ErrAlreadyRegistered
	}
	if h.arr.fastMain != nil && h.arr.fastBackup != nil {
		return h.getBitmap()
	}
	return h.getGeneric()
}

// wordWindow returns the intersection of slot's covering bitmap word with its
// batch, the window a word-mode probe may claim from. The clamp keeps batches
// isolated even when a word straddles a batch boundary (batch 0's unaligned
// end, the densely packed sub-word tail batches), so word mode never claims
// alignment-padding or sibling-batch slots and the per-batch occupancy
// distribution matches slot mode's.
func wordWindow(slot int, batch balance.Batch) (lo, hi int) {
	lo = slot / tas.WordBits * tas.WordBits
	hi = lo + tas.WordBits
	if lo < batch.Offset {
		lo = batch.Offset
	}
	if end := batch.Offset + batch.Size; hi > end {
		hi = end
	}
	return lo, hi
}

// getBitmap is the dispatch-free Get: every test-and-set or word claim is a
// direct call on the concrete bitmap spaces.
func (h *Handle) getBitmap() (int, error) {
	main, backup := h.arr.fastMain, h.arr.fastBackup
	layout := h.arr.layout
	wordMode := h.arr.cfg.Probe == ProbeWord
	probes := 0
	for b := 0; b < layout.NumBatches(); b++ {
		batch := layout.Batch(b)
		trials := h.arr.cfg.probesFor(b)
		for t := 0; t < trials; t++ {
			slot := batch.Offset + h.rng.Intn(batch.Size)
			probes++
			if wordMode {
				// One trial = one window: a single load, plus a single
				// fetch-or when the window has a free bit. The trial count
				// per batch (and so the batch reach distribution) is the
				// same as slot mode's; only the within-batch placement
				// differs.
				lo, hi := wordWindow(slot, batch)
				if s, ok := main.ClaimRange(lo, hi); ok {
					h.acquire(s, probes, false)
					return s, nil
				}
			} else if main.TestAndSet(slot) {
				h.acquire(slot, probes, false)
				return slot, nil
			}
		}
	}
	// Backup path: claim the first free slot of the dedicated n-slot array,
	// word-stepped (full words cost one load each). Reaching this point
	// requires losing every randomized probe, which the analysis shows is
	// essentially impossible; the sweep keeps Get wait-free regardless. The
	// sweep is deterministic, so word-stepping picks the same slot a per-slot
	// scan would; probe accounting records slots examined, not atomics
	// issued, so the reported cost model is unchanged.
	mainSize := main.Len()
	if s, ok := backup.ClaimRange(0, backup.Len()); ok {
		h.acquire(mainSize+s, probes+s+1, true)
		return mainSize + s, nil
	}
	probes += backup.Len()
	// Last resort: sweep the main array, again word-stepped. This is only
	// reachable when more than Capacity participants are registered at once
	// (outside the paper's model); the sweep guarantees that Get fails only
	// when no free slot exists anywhere in the namespace.
	if s, ok := main.ClaimRange(0, mainSize); ok {
		h.acquire(s, probes+s+1, true)
		return s, nil
	}
	probes += mainSize
	return 0, h.fail(probes)
}

// getGeneric is the interface-dispatch Get used by the unpacked substrates,
// the software test-and-set construction, and instrumented arrays. The probe
// sequence is identical to getBitmap; spaces that expose tas.Claimer (e.g. a
// counting decorator over a bitmap) keep the word-mode probes and the
// word-stepped sweeps, everything else runs per-slot.
func (h *Handle) getGeneric() (int, error) {
	layout := h.arr.layout
	wordMode := h.arr.cfg.Probe == ProbeWord && h.arr.mainClaim != nil
	probes := 0
	for b := 0; b < layout.NumBatches(); b++ {
		batch := layout.Batch(b)
		trials := h.arr.cfg.probesFor(b)
		for t := 0; t < trials; t++ {
			slot := batch.Offset + h.rng.Intn(batch.Size)
			probes++
			if wordMode {
				lo, hi := wordWindow(slot, batch)
				if s, ok := h.arr.mainClaim.ClaimRange(lo, hi); ok {
					h.acquire(s, probes, false)
					return s, nil
				}
			} else if h.arr.main.TestAndSet(slot) {
				h.acquire(slot, probes, false)
				return slot, nil
			}
		}
	}
	mainSize := layout.MainSize()
	if bc := h.arr.backupClaim; bc != nil {
		if s, ok := bc.ClaimRange(0, h.arr.backup.Len()); ok {
			h.acquire(mainSize+s, probes+s+1, true)
			return mainSize + s, nil
		}
		probes += h.arr.backup.Len()
	} else {
		for i := 0; i < h.arr.backup.Len(); i++ {
			probes++
			if h.arr.backup.TestAndSet(i) {
				h.acquire(mainSize+i, probes, true)
				return mainSize + i, nil
			}
		}
	}
	if mc := h.arr.mainClaim; mc != nil {
		if s, ok := mc.ClaimRange(0, mainSize); ok {
			h.acquire(s, probes+s+1, true)
			return s, nil
		}
		probes += mainSize
	} else {
		for i := 0; i < mainSize; i++ {
			probes++
			if h.arr.main.TestAndSet(i) {
				h.acquire(i, probes, true)
				return i, nil
			}
		}
	}
	return 0, h.fail(probes)
}

// acquire records a successful Get outcome.
func (h *Handle) acquire(name, probes int, backup bool) {
	h.name = name
	h.held = true
	h.lastProbes = probes
	h.lastBackup = backup
	h.stats.Record(probes, backup)
}

// fail records a Get that exhausted the namespace and returns ErrFull. The
// failed attempt's probes are folded into the statistics so the harness's
// error accounting does not undercount the work performed.
func (h *Handle) fail(probes int) error {
	h.lastProbes = probes
	h.lastBackup = true
	h.stats.RecordFailure(probes)
	return activity.ErrFull
}

// Adopt registers the handle at a specific name instead of probing for one.
// It performs a single test-and-set on that slot and fails with ErrFull if
// the slot is already taken, or ErrAlreadyRegistered if the handle holds a
// name. Adopt exists for two purposes: handing a registration over between
// participants (e.g. a recovering thread re-attaching to a slot), and setting
// up the degraded initial states used by the self-healing experiment
// (Figure 3), where participants must start out holding badly placed names.
//
// A successful Adopt resets the last-operation telemetry to its own single
// trial: LastProbes() reports 1 and LastUsedBackup() reports whether the
// adopted name lies in the backup region, replacing whatever the previous
// Get left behind. The next Get — including a failed one — overwrites both
// again. Only the cumulative Stats() are exempt: adoption is not a probing
// Get and is deliberately excluded from probe statistics so experiment
// set-up does not skew the measurements.
func (h *Handle) Adopt(name int) error {
	if h.held {
		return activity.ErrAlreadyRegistered
	}
	if name < 0 || name >= h.arr.Size() {
		return fmt.Errorf("core: adopt name %d outside namespace [0, %d)", name, h.arr.Size())
	}
	mainSize := h.arr.layout.MainSize()
	var won bool
	switch {
	case name < mainSize && h.arr.fastMain != nil:
		won = h.arr.fastMain.TestAndSet(name)
	case name < mainSize:
		won = h.arr.main.TestAndSet(name)
	case h.arr.fastBackup != nil:
		won = h.arr.fastBackup.TestAndSet(name - mainSize)
	default:
		won = h.arr.backup.TestAndSet(name - mainSize)
	}
	if !won {
		return activity.ErrFull
	}
	// Adoption is not a probing Get; it is deliberately excluded from the
	// probe statistics so experiment set-up does not skew the measurements.
	h.name = name
	h.held = true
	h.lastProbes = 1
	h.lastBackup = name >= mainSize
	return nil
}

// BindClaimed attaches the handle to a slot whose bit the caller has already
// won directly on the array's slot spaces — the sharded composition's
// last-resort sweep claims shard slots with tas.Claimer.ClaimRange and then
// binds the winning shard's sub-handle here. Unlike Adopt it performs no
// test-and-set of its own, so the caller must own the claimed bit and hand it
// to exactly one handle; a bound name is freed and re-acquired like any
// other. Like Adopt it sets LastProbes() to 1, sets LastUsedBackup() from the
// name's region, and records nothing in the cumulative statistics (the
// sharded layer accounts the sweep's probes at its own level).
func (h *Handle) BindClaimed(name int) error {
	if h.held {
		return activity.ErrAlreadyRegistered
	}
	if name < 0 || name >= h.arr.Size() {
		return fmt.Errorf("core: bind name %d outside namespace [0, %d)", name, h.arr.Size())
	}
	h.name = name
	h.held = true
	h.lastProbes = 1
	h.lastBackup = name >= h.arr.layout.MainSize()
	return nil
}

// Free releases the name acquired by the most recent Get.
func (h *Handle) Free() error {
	if !h.held {
		return activity.ErrNotRegistered
	}
	mainSize := h.arr.layout.MainSize()
	switch {
	case h.name < mainSize && h.arr.fastMain != nil:
		h.arr.fastMain.Reset(h.name)
	case h.name < mainSize:
		h.arr.main.Reset(h.name)
	case h.arr.fastBackup != nil:
		h.arr.fastBackup.Reset(h.name - mainSize)
	default:
		h.arr.backup.Reset(h.name - mainSize)
	}
	h.held = false
	h.stats.RecordFree()
	return nil
}

// Name returns the currently held name, if any.
func (h *Handle) Name() (int, bool) {
	if !h.held {
		return 0, false
	}
	return h.name, true
}

// LastProbes returns the number of test-and-set trials performed by the most
// recent Get (including a failed one).
func (h *Handle) LastProbes() int { return h.lastProbes }

// LastUsedBackup reports whether the most recent Get had to fall back to the
// backup array.
func (h *Handle) LastUsedBackup() bool { return h.lastBackup }

// Stats returns the cumulative probe statistics recorded by this handle.
func (h *Handle) Stats() activity.ProbeStats { return h.stats }
