package core

import (
	"testing"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/balance"
)

func TestAdoptBasics(t *testing.T) {
	la := MustNew(Config{Capacity: 32, Seed: 1})
	h := la.Handle().(*Handle)

	target := la.Layout().Batch(1).Offset // a slot in batch 1
	if err := h.Adopt(target); err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	if name, held := h.Name(); !held || name != target {
		t.Fatalf("Name() = (%d, %v), want (%d, true)", name, held, target)
	}
	// Adoption must not be recorded as a probing Get.
	if h.Stats().Ops != 0 {
		t.Fatalf("Stats.Ops = %d after Adopt, want 0", h.Stats().Ops)
	}
	// The slot is visible to Collect and to the occupancy measurement.
	if got := la.Collect(nil); len(got) != 1 || got[0] != target {
		t.Fatalf("Collect = %v, want [%d]", got, target)
	}
	occ := la.Occupancy()
	if occ[1] != 1 {
		t.Fatalf("batch 1 occupancy = %d, want 1", occ[1])
	}
	// Free releases the adopted slot normally.
	if err := h.Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if la.Occupancy().Total() != 0 {
		t.Fatal("occupancy nonzero after freeing adopted slot")
	}
}

func TestAdoptErrors(t *testing.T) {
	la := MustNew(Config{Capacity: 8, Seed: 2})
	a := la.Handle().(*Handle)
	b := la.Handle().(*Handle)

	if err := a.Adopt(-1); err == nil {
		t.Fatal("Adopt(-1) accepted")
	}
	if err := a.Adopt(la.Size()); err == nil {
		t.Fatal("Adopt(Size()) accepted")
	}
	if err := a.Adopt(3); err != nil {
		t.Fatalf("Adopt(3): %v", err)
	}
	if err := a.Adopt(4); err != activity.ErrAlreadyRegistered {
		t.Fatalf("second Adopt = %v, want ErrAlreadyRegistered", err)
	}
	if err := b.Adopt(3); err != activity.ErrFull {
		t.Fatalf("Adopt of taken slot = %v, want ErrFull", err)
	}
}

func TestAdoptBackupSlot(t *testing.T) {
	la := MustNew(Config{Capacity: 8, Seed: 3})
	h := la.Handle().(*Handle)
	backupName := la.Layout().MainSize() + 2
	if err := h.Adopt(backupName); err != nil {
		t.Fatalf("Adopt backup slot: %v", err)
	}
	if !h.LastUsedBackup() {
		t.Fatal("LastUsedBackup() = false for an adopted backup slot")
	}
	if err := h.Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if la.Occupancy().Total() != 0 {
		t.Fatal("backup slot not released")
	}
}

// TestAdoptResetsLastOpTelemetry pins down the documented LastProbes /
// LastUsedBackup contract around Adopt: a successful Adopt reports exactly
// one trial (replacing whatever the previous Get left), and the next Get —
// including a failed one — overwrites the adoption's telemetry in turn.
func TestAdoptResetsLastOpTelemetry(t *testing.T) {
	const n = 16
	la := MustNew(Config{Capacity: n, Seed: 6})
	mainSize := la.Layout().MainSize()

	h := la.Handle().(*Handle)
	if h.LastProbes() != 0 {
		t.Fatalf("fresh handle LastProbes = %d, want 0", h.LastProbes())
	}
	// A Get leaves its own probe count behind...
	if _, err := h.Get(); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := h.Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}
	// ...and a subsequent Adopt resets it to a single trial.
	if err := h.Adopt(mainSize + 3); err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	if h.LastProbes() != 1 {
		t.Fatalf("LastProbes after Adopt = %d, want 1", h.LastProbes())
	}
	if !h.LastUsedBackup() {
		t.Fatal("LastUsedBackup() = false after adopting a backup slot")
	}
	if err := h.Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := h.Adopt(2); err != nil {
		t.Fatalf("Adopt main slot: %v", err)
	}
	if h.LastProbes() != 1 || h.LastUsedBackup() {
		t.Fatalf("after adopting a main slot: LastProbes = %d, LastUsedBackup = %v, want 1, false",
			h.LastProbes(), h.LastUsedBackup())
	}
	if err := h.Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}

	// Take the whole namespace so the next Get fails: the failed Get's full
	// sweep count must overwrite the stale post-Adopt value of 1.
	for i := 0; i < la.Size(); i++ {
		filler := la.Handle().(*Handle)
		if err := filler.Adopt(i); err != nil {
			t.Fatalf("filler Adopt(%d): %v", i, err)
		}
	}
	if _, err := h.Get(); err != activity.ErrFull {
		t.Fatalf("Get on full namespace = %v, want ErrFull", err)
	}
	want := la.Layout().NumBatches() + la.BackupSpace().Len() + mainSize
	if h.LastProbes() != want {
		t.Fatalf("LastProbes after failed Get = %d, want %d (Adopt's 1 must be overwritten)",
			h.LastProbes(), want)
	}
	if !h.LastUsedBackup() {
		t.Fatal("LastUsedBackup() = false after a failed Get swept the backup")
	}
}

// TestAdoptBuildsDegradedState reproduces, in miniature, the set-up of the
// healing experiment: handles adopt the slots prescribed by the Figure 3
// degraded state, making the array unbalanced, and releasing them heals it.
func TestAdoptBuildsDegradedState(t *testing.T) {
	const n = 256
	la := MustNew(Config{Capacity: n, Seed: 4})
	spec := balance.Fig3InitialState()

	var handles []*Handle
	for j, frac := range spec.Fractions {
		b := la.Layout().Batch(j)
		want := int(frac * float64(b.Size))
		for i := 0; i < want; i++ {
			h := la.Handle().(*Handle)
			if err := h.Adopt(b.Offset + i); err != nil {
				t.Fatalf("Adopt(batch %d slot %d): %v", j, i, err)
			}
			handles = append(handles, h)
		}
	}
	if balance.FullyBalanced(la.Layout(), la.Occupancy()) {
		t.Fatal("degraded state is unexpectedly balanced")
	}
	for _, h := range handles {
		if err := h.Free(); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
	if !balance.FullyBalanced(la.Layout(), la.Occupancy()) {
		t.Fatal("array not balanced after releasing the degraded state")
	}
}
