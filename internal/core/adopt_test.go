package core

import (
	"testing"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/balance"
)

func TestAdoptBasics(t *testing.T) {
	la := MustNew(Config{Capacity: 32, Seed: 1})
	h := la.Handle().(*Handle)

	target := la.Layout().Batch(1).Offset // a slot in batch 1
	if err := h.Adopt(target); err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	if name, held := h.Name(); !held || name != target {
		t.Fatalf("Name() = (%d, %v), want (%d, true)", name, held, target)
	}
	// Adoption must not be recorded as a probing Get.
	if h.Stats().Ops != 0 {
		t.Fatalf("Stats.Ops = %d after Adopt, want 0", h.Stats().Ops)
	}
	// The slot is visible to Collect and to the occupancy measurement.
	if got := la.Collect(nil); len(got) != 1 || got[0] != target {
		t.Fatalf("Collect = %v, want [%d]", got, target)
	}
	occ := la.Occupancy()
	if occ[1] != 1 {
		t.Fatalf("batch 1 occupancy = %d, want 1", occ[1])
	}
	// Free releases the adopted slot normally.
	if err := h.Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if la.Occupancy().Total() != 0 {
		t.Fatal("occupancy nonzero after freeing adopted slot")
	}
}

func TestAdoptErrors(t *testing.T) {
	la := MustNew(Config{Capacity: 8, Seed: 2})
	a := la.Handle().(*Handle)
	b := la.Handle().(*Handle)

	if err := a.Adopt(-1); err == nil {
		t.Fatal("Adopt(-1) accepted")
	}
	if err := a.Adopt(la.Size()); err == nil {
		t.Fatal("Adopt(Size()) accepted")
	}
	if err := a.Adopt(3); err != nil {
		t.Fatalf("Adopt(3): %v", err)
	}
	if err := a.Adopt(4); err != activity.ErrAlreadyRegistered {
		t.Fatalf("second Adopt = %v, want ErrAlreadyRegistered", err)
	}
	if err := b.Adopt(3); err != activity.ErrFull {
		t.Fatalf("Adopt of taken slot = %v, want ErrFull", err)
	}
}

func TestAdoptBackupSlot(t *testing.T) {
	la := MustNew(Config{Capacity: 8, Seed: 3})
	h := la.Handle().(*Handle)
	backupName := la.Layout().MainSize() + 2
	if err := h.Adopt(backupName); err != nil {
		t.Fatalf("Adopt backup slot: %v", err)
	}
	if !h.LastUsedBackup() {
		t.Fatal("LastUsedBackup() = false for an adopted backup slot")
	}
	if err := h.Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if la.Occupancy().Total() != 0 {
		t.Fatal("backup slot not released")
	}
}

// TestAdoptBuildsDegradedState reproduces, in miniature, the set-up of the
// healing experiment: handles adopt the slots prescribed by the Figure 3
// degraded state, making the array unbalanced, and releasing them heals it.
func TestAdoptBuildsDegradedState(t *testing.T) {
	const n = 256
	la := MustNew(Config{Capacity: n, Seed: 4})
	spec := balance.Fig3InitialState()

	var handles []*Handle
	for j, frac := range spec.Fractions {
		b := la.Layout().Batch(j)
		want := int(frac * float64(b.Size))
		for i := 0; i < want; i++ {
			h := la.Handle().(*Handle)
			if err := h.Adopt(b.Offset + i); err != nil {
				t.Fatalf("Adopt(batch %d slot %d): %v", j, i, err)
			}
			handles = append(handles, h)
		}
	}
	if balance.FullyBalanced(la.Layout(), la.Occupancy()) {
		t.Fatal("degraded state is unexpectedly balanced")
	}
	for _, h := range handles {
		if err := h.Free(); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
	if !balance.FullyBalanced(la.Layout(), la.Occupancy()) {
		t.Fatal("array not balanced after releasing the degraded state")
	}
}
