// Package core implements the LevelArray, the paper's long-lived renaming /
// activity-array algorithm (Section 4).
//
// The LevelArray is an array of roughly 2n test-and-set slots split into
// log n geometrically shrinking batches. A Get probes a constant number of
// uniformly random slots per batch, moving to the next batch after failures,
// and falls back to a linear scan of a dedicated n-slot backup array in the
// (essentially impossible) event that every randomized probe loses. Free
// resets the acquired slot; Collect scans the array.
//
// The package exposes configuration knobs that correspond to the paper's
// parameters: the contention bound n, the space parameter ε (default 1, i.e.
// a 2n-slot main array), the per-batch probe counts c_i (default 1, as in the
// paper's implementation; the analysis uses c_i ≥ 16), and the PRNG family.
// Beyond the paper, Config.Probe selects the write-side probing strategy on
// the bitmap substrate: "slot" is the paper-faithful one-test-and-set-per-
// probed-slot reference, "word" resolves each random probe to its covering
// 64-slot bitmap word and claims any free slot there with a single load plus
// a single fetch-or (see the ProbeMode constants).
package core

import (
	"fmt"

	"github.com/levelarray/levelarray/internal/balance"
	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/tas"
)

// DefaultProbesPerBatch is the number of test-and-set trials a Get performs
// in each batch before moving on. The paper's implementation uses 1; its
// analysis uses a larger constant (≥ 16) purely to obtain high-probability
// concentration bounds.
const DefaultProbesPerBatch = 1

// SpaceKind selects the slot substrate layout. See the Config.Space field.
type SpaceKind = tas.Kind

// The substrate layouts a LevelArray can run on. SpaceBitmap is the default:
// 64 slots per word, word-at-a-time Collect, and a dispatch-free hot path.
// The unpacked layouts remain for the benchmarks that compare them.
const (
	SpaceBitmap       = tas.KindBitmap
	SpaceBitmapPadded = tas.KindBitmapPadded
	SpacePadded       = tas.KindPadded
	SpaceCompact      = tas.KindCompact
)

// ProbeMode selects the write-side probing strategy of Get on word-claim-
// capable substrates. See the Config.Probe field.
type ProbeMode int

const (
	// ProbeSlot is the paper-faithful strategy and the conformance
	// reference: every probe is one test-and-set on the exact slot the RNG
	// chose. Default.
	ProbeSlot ProbeMode = iota

	// ProbeWord resolves each random batch probe to its covering bitmap
	// word and claims any free slot of that word (clamped to the batch, so
	// batches stay isolated) with one atomic load plus one fetch-or. The
	// batch-level trial sequence — which batches are visited, and how many
	// trials each receives — is unchanged; only the within-batch slot choice
	// deviates from the paper's model (first free bit of the probed word
	// instead of the probed slot itself). A trial now fails only when the
	// whole probed window is full, which is what makes word mode dominate at
	// high fill. It requires a bitmap substrate (and, when instrumented, a
	// decorator that forwards tas.Claimer).
	ProbeWord
)

// ProbeModeNames lists the valid -probe flag values.
const ProbeModeNames = "slot, word"

// String returns the mode name as accepted by the cmd/ drivers' -probe flag.
func (m ProbeMode) String() string {
	switch m {
	case ProbeSlot:
		return "slot"
	case ProbeWord:
		return "word"
	default:
		return fmt.Sprintf("ProbeMode(%d)", int(m))
	}
}

// ParseProbeMode maps a mode name to a ProbeMode.
func ParseProbeMode(name string) (ProbeMode, bool) {
	switch name {
	case "slot", "":
		return ProbeSlot, true
	case "word":
		return ProbeWord, true
	default:
		return 0, false
	}
}

// SpaceRole tells an Instrument decorator which space it is wrapping.
type SpaceRole int

// The two spaces a LevelArray owns.
const (
	RoleMain SpaceRole = iota
	RoleBackup
)

// String returns the role name.
func (r SpaceRole) String() string {
	if r == RoleBackup {
		return "backup"
	}
	return "main"
}

// Config parameterizes a LevelArray.
type Config struct {
	// Capacity is n, the maximum number of participants that may hold names
	// simultaneously. It must be at least 1.
	Capacity int

	// Epsilon is the space parameter ε: the main array holds roughly (1+ε)n
	// slots. Zero selects balance.DefaultEpsilon (ε = 1, a 2n-slot array).
	Epsilon float64

	// ProbesPerBatch is the uniform probe count c applied to every batch.
	// Zero selects DefaultProbesPerBatch. It is ignored if ProbeSchedule is
	// non-empty.
	ProbesPerBatch int

	// ProbeSchedule optionally sets a per-batch probe count c_i. Batches
	// beyond the end of the slice use the last entry. Entries must be
	// positive.
	ProbeSchedule []int

	// RNG selects the pseudo-random generator family used for probe
	// choices. Zero selects rng.KindXorshift (Marsaglia).
	RNG rng.Kind

	// Seed is the base seed from which per-handle generators are derived.
	// Zero is a valid seed.
	Seed uint64

	// Space selects the slot substrate layout. The zero value, SpaceBitmap,
	// is the word-packed bitmap: 64 slots per uint64 word, test-and-set as a
	// wait-free fetch-or on the bit mask, Collect and Occupancy scanning 64 slots per
	// atomic load, and — when no Instrument decorator is installed — a Get/
	// Free hot path with zero interface dispatch. SpaceBitmapPadded places
	// each bitmap word on its own cache line for heavily contended arrays.
	// SpacePadded (one slot per cache line) and SpaceCompact (one uint32 per
	// slot) are the historical unpacked layouts, kept for the substrate-
	// comparison benchmarks; they always run through the tas.Space
	// interface.
	Space SpaceKind

	// Probe selects the write-side probing strategy. The zero value,
	// ProbeSlot, performs one test-and-set per probed slot, exactly as the
	// paper specifies; ProbeWord claims any free slot of the bitmap word
	// covering each probe (single load + single fetch-or), preserving the
	// batch-level probe distribution while collapsing up to 64 per-slot
	// trials into one atomic pair. ProbeWord requires a bitmap Space and is
	// rejected for the unpacked layouts and SoftwareTAS. The deterministic
	// backup and last-resort sweeps are word-stepped in both modes.
	Probe ProbeMode

	// Instrument, when non-nil, is applied to each freshly built slot space
	// and may return a wrapped tas.Space (tas.CountingSpace, tas.FlakySpace,
	// or any custom decorator). Returning the inner space unchanged keeps
	// the dispatch-free fast path; returning a wrapper routes every probe,
	// reset and read of that space through the interface. Instrumentation is
	// therefore strictly pay-when-requested: the hot path of an
	// uninstrumented bitmap array contains no tas.Space interface calls.
	Instrument func(role SpaceRole, inner tas.Space) tas.Space

	// CompactSlots is a deprecated alias for Space: SpaceCompact, kept for
	// configurations written against the pre-bitmap substrate. It is only
	// honored when Space is left at its zero value.
	CompactSlots bool

	// SoftwareTAS replaces the hardware compare-and-swap slots with the
	// randomized read/write test-and-set construction (tas.RandomizedSpace),
	// the fallback the paper describes for machines without a hardware
	// test-and-set primitive. It is slower and exists for the ablation
	// benchmarks; it cannot be combined with CompactSlots or a non-default
	// Space.
	SoftwareTAS bool
}

// withDefaults returns a copy of c with zero values replaced by defaults.
func (c Config) withDefaults() Config {
	if c.Epsilon == 0 {
		c.Epsilon = balance.DefaultEpsilon
	}
	if c.ProbesPerBatch == 0 {
		c.ProbesPerBatch = DefaultProbesPerBatch
	}
	if c.RNG == 0 {
		c.RNG = rng.KindXorshift
	}
	if c.Space == SpaceBitmap && c.CompactSlots {
		c.Space = SpaceCompact
	}
	return c
}

// validate reports the first problem with the configuration.
func (c Config) validate() error {
	if c.Capacity < 1 {
		return fmt.Errorf("core: capacity %d must be at least 1", c.Capacity)
	}
	if c.ProbesPerBatch < 0 {
		return fmt.Errorf("core: probes per batch %d must not be negative", c.ProbesPerBatch)
	}
	for i, p := range c.ProbeSchedule {
		if p < 1 {
			return fmt.Errorf("core: probe schedule entry %d is %d, must be at least 1", i, p)
		}
	}
	if c.SoftwareTAS && c.CompactSlots {
		return fmt.Errorf("core: SoftwareTAS cannot be combined with CompactSlots")
	}
	if c.SoftwareTAS && c.Space != SpaceBitmap {
		return fmt.Errorf("core: SoftwareTAS cannot be combined with Space %v", c.Space)
	}
	switch c.Space {
	case SpaceBitmap, SpaceBitmapPadded, SpacePadded, SpaceCompact:
	default:
		return fmt.Errorf("core: unknown Space kind %d", int(c.Space))
	}
	switch c.Probe {
	case ProbeSlot, ProbeWord:
	default:
		return fmt.Errorf("core: unknown Probe mode %d (valid: %s)", int(c.Probe), ProbeModeNames)
	}
	if c.Probe == ProbeWord {
		if c.SoftwareTAS {
			return fmt.Errorf("core: Probe %q cannot be combined with SoftwareTAS", ProbeWord)
		}
		if c.Space != SpaceBitmap && c.Space != SpaceBitmapPadded {
			return fmt.Errorf("core: Probe %q requires a bitmap Space, got %v", ProbeWord, c.Space)
		}
	}
	return nil
}

// newSpace builds a slot space of the given size and applies the Instrument
// decorator; seed is only used by the software test-and-set construction.
func (c Config) newSpace(role SpaceRole, size int, seed uint64) tas.Space {
	var sp tas.Space
	if c.SoftwareTAS {
		sp = tas.NewRandomizedSpace(size, seed)
	} else {
		sp = tas.NewSpace(c.Space, size)
	}
	if c.Instrument != nil {
		if wrapped := c.Instrument(role, sp); wrapped != nil {
			sp = wrapped
		}
	}
	return sp
}

// probesFor returns c_i for batch i under this configuration.
func (c Config) probesFor(batch int) int {
	if len(c.ProbeSchedule) > 0 {
		if batch < len(c.ProbeSchedule) {
			return c.ProbeSchedule[batch]
		}
		return c.ProbeSchedule[len(c.ProbeSchedule)-1]
	}
	return c.ProbesPerBatch
}
