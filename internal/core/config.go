// Package core implements the LevelArray, the paper's long-lived renaming /
// activity-array algorithm (Section 4).
//
// The LevelArray is an array of roughly 2n test-and-set slots split into
// log n geometrically shrinking batches. A Get probes a constant number of
// uniformly random slots per batch, moving to the next batch after failures,
// and falls back to a linear scan of a dedicated n-slot backup array in the
// (essentially impossible) event that every randomized probe loses. Free
// resets the acquired slot; Collect scans the array.
//
// The package exposes configuration knobs that correspond to the paper's
// parameters: the contention bound n, the space parameter ε (default 1, i.e.
// a 2n-slot main array), the per-batch probe counts c_i (default 1, as in the
// paper's implementation; the analysis uses c_i ≥ 16), and the PRNG family.
package core

import (
	"fmt"

	"github.com/levelarray/levelarray/internal/balance"
	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/tas"
)

// DefaultProbesPerBatch is the number of test-and-set trials a Get performs
// in each batch before moving on. The paper's implementation uses 1; its
// analysis uses a larger constant (≥ 16) purely to obtain high-probability
// concentration bounds.
const DefaultProbesPerBatch = 1

// Config parameterizes a LevelArray.
type Config struct {
	// Capacity is n, the maximum number of participants that may hold names
	// simultaneously. It must be at least 1.
	Capacity int

	// Epsilon is the space parameter ε: the main array holds roughly (1+ε)n
	// slots. Zero selects balance.DefaultEpsilon (ε = 1, a 2n-slot array).
	Epsilon float64

	// ProbesPerBatch is the uniform probe count c applied to every batch.
	// Zero selects DefaultProbesPerBatch. It is ignored if ProbeSchedule is
	// non-empty.
	ProbesPerBatch int

	// ProbeSchedule optionally sets a per-batch probe count c_i. Batches
	// beyond the end of the slice use the last entry. Entries must be
	// positive.
	ProbeSchedule []int

	// RNG selects the pseudo-random generator family used for probe
	// choices. Zero selects rng.KindXorshift (Marsaglia).
	RNG rng.Kind

	// Seed is the base seed from which per-handle generators are derived.
	// Zero is a valid seed.
	Seed uint64

	// CompactSlots selects the unpadded slot layout (16 slots per cache
	// line) instead of the default one-slot-per-cache-line layout. The
	// compact layout is smaller and collects faster but exhibits false
	// sharing under heavy contention.
	CompactSlots bool

	// SoftwareTAS replaces the hardware compare-and-swap slots with the
	// randomized read/write test-and-set construction (tas.RandomizedSpace),
	// the fallback the paper describes for machines without a hardware
	// test-and-set primitive. It is slower and exists for the ablation
	// benchmarks; it cannot be combined with CompactSlots.
	SoftwareTAS bool
}

// withDefaults returns a copy of c with zero values replaced by defaults.
func (c Config) withDefaults() Config {
	if c.Epsilon == 0 {
		c.Epsilon = balance.DefaultEpsilon
	}
	if c.ProbesPerBatch == 0 {
		c.ProbesPerBatch = DefaultProbesPerBatch
	}
	if c.RNG == 0 {
		c.RNG = rng.KindXorshift
	}
	return c
}

// validate reports the first problem with the configuration.
func (c Config) validate() error {
	if c.Capacity < 1 {
		return fmt.Errorf("core: capacity %d must be at least 1", c.Capacity)
	}
	if c.ProbesPerBatch < 0 {
		return fmt.Errorf("core: probes per batch %d must not be negative", c.ProbesPerBatch)
	}
	for i, p := range c.ProbeSchedule {
		if p < 1 {
			return fmt.Errorf("core: probe schedule entry %d is %d, must be at least 1", i, p)
		}
	}
	if c.SoftwareTAS && c.CompactSlots {
		return fmt.Errorf("core: SoftwareTAS cannot be combined with CompactSlots")
	}
	return nil
}

// newSpace builds a slot space of the given size; seed is only used by the
// software test-and-set construction.
func (c Config) newSpace(size int, seed uint64) tas.Space {
	switch {
	case c.SoftwareTAS:
		return tas.NewRandomizedSpace(size, seed)
	case c.CompactSlots:
		return tas.NewCompactSpace(size)
	default:
		return tas.NewAtomicSpace(size)
	}
}

// probesFor returns c_i for batch i under this configuration.
func (c Config) probesFor(batch int) int {
	if len(c.ProbeSchedule) > 0 {
		if batch < len(c.ProbeSchedule) {
			return c.ProbeSchedule[batch]
		}
		return c.ProbeSchedule[len(c.ProbeSchedule)-1]
	}
	return c.ProbesPerBatch
}
