package core

import (
	"math"
	"testing"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/arraytest"
	"github.com/levelarray/levelarray/internal/tas"
)

func TestConformanceWordProbe(t *testing.T) {
	arraytest.Run(t, func(capacity int) activity.Array {
		return MustNew(Config{Capacity: capacity, Seed: 53, Probe: ProbeWord})
	})
}

func TestConformanceWordProbePaddedBitmap(t *testing.T) {
	arraytest.Run(t, func(capacity int) activity.Array {
		return MustNew(Config{Capacity: capacity, Seed: 59, Probe: ProbeWord, Space: SpaceBitmapPadded})
	})
}

// TestConformanceWordProbeInstrumented runs word mode entirely on the
// interface path: the counting decorator forwards tas.Claimer, so word
// probes and word-stepped sweeps survive instrumentation.
func TestConformanceWordProbeInstrumented(t *testing.T) {
	arraytest.Run(t, func(capacity int) activity.Array {
		return MustNew(Config{Capacity: capacity, Seed: 61, Probe: ProbeWord, Instrument: func(role SpaceRole, inner tas.Space) tas.Space {
			return tas.NewCountingSpace(inner)
		}})
	})
}

func TestParseProbeMode(t *testing.T) {
	cases := []struct {
		name string
		want ProbeMode
		ok   bool
	}{
		{"slot", ProbeSlot, true},
		{"", ProbeSlot, true},
		{"word", ProbeWord, true},
		{"Word", 0, false},
		{"bitmap", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseProbeMode(c.name)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseProbeMode(%q) = (%v, %v), want (%v, %v)", c.name, got, ok, c.want, c.ok)
		}
	}
	if ProbeSlot.String() != "slot" || ProbeWord.String() != "word" {
		t.Errorf("String() = %q, %q", ProbeSlot, ProbeWord)
	}
}

// TestProbeModeValidation pins down which configurations word mode accepts:
// bitmap substrates only, and instrumentation must forward word claims.
func TestProbeModeValidation(t *testing.T) {
	flaky := func(role SpaceRole, inner tas.Space) tas.Space { return tas.NewFlakySpace(inner, 0) }
	counting := func(role SpaceRole, inner tas.Space) tas.Space { return tas.NewCountingSpace(inner) }
	cases := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"word-bitmap", Config{Capacity: 8, Probe: ProbeWord}, false},
		{"word-bitmap-padded", Config{Capacity: 8, Probe: ProbeWord, Space: SpaceBitmapPadded}, false},
		{"word-counting", Config{Capacity: 8, Probe: ProbeWord, Instrument: counting}, false},
		{"word-padded", Config{Capacity: 8, Probe: ProbeWord, Space: SpacePadded}, true},
		{"word-compact", Config{Capacity: 8, Probe: ProbeWord, Space: SpaceCompact}, true},
		{"word-compact-legacy", Config{Capacity: 8, Probe: ProbeWord, CompactSlots: true}, true},
		{"word-software-tas", Config{Capacity: 8, Probe: ProbeWord, SoftwareTAS: true}, true},
		{"word-flaky", Config{Capacity: 8, Probe: ProbeWord, Instrument: flaky}, true},
		{"unknown-mode", Config{Capacity: 8, Probe: ProbeMode(99)}, true},
		{"slot-anything", Config{Capacity: 8, Space: SpaceCompact}, false},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.cfg)
			if (err != nil) != c.wantErr {
				t.Fatalf("New(%+v) error = %v, wantErr %v", c.cfg, err, c.wantErr)
			}
		})
	}
}

// TestWordModeProbeSingleAtomic verifies the headline cost collapse: on an
// array with free capacity, one word-mode Get issues exactly one word-level
// atomic operation (measured by the counting decorator) and records exactly
// one probe.
func TestWordModeProbeSingleAtomic(t *testing.T) {
	var main *tas.CountingSpace
	la := MustNew(Config{Capacity: 256, Seed: 3, Probe: ProbeWord, Instrument: func(role SpaceRole, inner tas.Space) tas.Space {
		c := tas.NewCountingSpace(inner)
		if role == RoleMain {
			main = c
		}
		return c
	}})
	h := la.Handle().(*Handle)
	if _, err := h.Get(); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if h.LastProbes() != 1 {
		t.Fatalf("LastProbes = %d, want 1", h.LastProbes())
	}
	counts := main.Counters()
	if counts.Probes != 1 || counts.Wins != 1 {
		t.Fatalf("main space counters = %+v, want exactly 1 probe / 1 win", counts)
	}
}

// batchOfStrict returns the index of the batch whose slot range contains
// slot, or -1 for slots (alignment padding, backup) outside every batch.
func batchOfStrict(la *LevelArray, slot int) int {
	for j := 0; j < la.Layout().NumBatches(); j++ {
		b := la.Layout().Batch(j)
		if slot >= b.Offset && slot < b.Offset+b.Size {
			return j
		}
	}
	return -1
}

// TestWordModeStaysInBatches churns word mode at high fill on a layout with
// alignment padding and asserts every issued name lies inside a real batch:
// the claim window is clamped to the probed batch, so word mode can never
// claim padding slots or leak into a sibling batch.
func TestWordModeStaysInBatches(t *testing.T) {
	const n = 1000 // this layout has padding between word-sized batches
	la := MustNew(Config{Capacity: n, Seed: 67, Probe: ProbeWord})
	if la.Layout().PaddingSlots() == 0 {
		t.Fatal("test requires a layout with alignment padding")
	}
	resident := make([]activity.Handle, n*9/10)
	for i := range resident {
		resident[i] = la.Handle()
		name, err := resident[i].Get()
		if err != nil {
			t.Fatalf("pre-fill Get %d: %v", i, err)
		}
		if batchOfStrict(la, name) < 0 {
			t.Fatalf("pre-fill name %d lies outside every batch", name)
		}
	}
	churn := la.Handle()
	for i := 0; i < 2000; i++ {
		name, err := churn.Get()
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if batchOfStrict(la, name) < 0 {
			t.Fatalf("churn name %d lies outside every batch (padding leak)", name)
		}
		if err := churn.Free(); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
}

// steadyStateFills churns every resident through Free/Get until the placement
// distribution reaches the mode's steady state, then returns the per-batch
// occupancy fractions.
func steadyStateFills(t *testing.T, cfg Config, residents, rounds int) []float64 {
	t.Helper()
	la := MustNew(cfg)
	handles := make([]activity.Handle, residents)
	for i := range handles {
		handles[i] = la.Handle()
		if _, err := handles[i].Get(); err != nil {
			t.Fatalf("pre-fill Get: %v", err)
		}
	}
	for r := 0; r < rounds; r++ {
		h := handles[r%residents]
		if err := h.Free(); err != nil {
			t.Fatalf("churn Free: %v", err)
		}
		if _, err := h.Get(); err != nil {
			t.Fatalf("churn Get: %v", err)
		}
	}
	occ := la.Occupancy()
	out := make([]float64, la.Layout().NumBatches())
	var total int
	for j := range out {
		out[j] = float64(occ[j]) / float64(la.Layout().Batch(j).Size)
		total += occ[j]
	}
	if total+occ[la.Layout().NumBatches()] != residents {
		t.Fatalf("steady-state occupancy %d, want %d residents", total, residents)
	}
	return out
}

// TestWordModeOccupancyConformance compares steady-state per-batch fill
// fractions between the probe modes. Word mode's only sanctioned deviation is
// placement within the probed window, which makes trials succeed earlier, so
// names may sit *shallower* than slot mode's — never deeper. A deeper word-
// mode distribution would mean the low-bit clustering of word claims is
// filling whole words and pushing probes down the batch sequence, exactly the
// skew this test guards against. At the analysis's larger per-batch probe
// counts both modes concentrate in batch 0 and the fractions must agree
// tightly.
func TestWordModeOccupancyConformance(t *testing.T) {
	const (
		n         = 512
		residents = n / 2
		rounds    = 6 * n
	)
	t.Run("c=1", func(t *testing.T) {
		slot := steadyStateFills(t, Config{Capacity: n, Seed: 131}, residents, rounds)
		word := steadyStateFills(t, Config{Capacity: n, Seed: 131, Probe: ProbeWord}, residents, rounds)
		if math.Abs(slot[0]-word[0]) > 0.10 {
			t.Errorf("batch 0 fill: slot %.3f vs word %.3f, |Δ| > 0.10", slot[0], word[0])
		}
		for j := 1; j < len(slot); j++ {
			if word[j] > slot[j]+0.10 {
				t.Errorf("batch %d fill: word %.3f exceeds slot %.3f by more than 0.10 (names pushed deeper)",
					j, word[j], slot[j])
			}
		}
	})
	t.Run("c=4", func(t *testing.T) {
		slot := steadyStateFills(t, Config{Capacity: n, Seed: 137, ProbesPerBatch: 4}, residents, rounds)
		word := steadyStateFills(t, Config{Capacity: n, Seed: 137, ProbesPerBatch: 4, Probe: ProbeWord}, residents, rounds)
		for j := range slot {
			if math.Abs(slot[j]-word[j]) > 0.08 {
				t.Errorf("batch %d fill: slot %.3f vs word %.3f, |Δ| > 0.08", j, slot[j], word[j])
			}
		}
	})
}

// fillSpace takes every slot of sp directly, leaving the top `spare` slots
// free; it bypasses handles because the point is the array state, not how it
// was reached.
func fillSpace(t *testing.T, sp tas.Space, spare int) {
	t.Helper()
	for i := 0; i < sp.Len()-spare; i++ {
		if !sp.TestAndSet(i) {
			t.Fatalf("setup TestAndSet(%d) lost on a fresh space", i)
		}
	}
}

// TestSweepWordOps is the acceptance check for the word-stepped sweeps: when
// a Get falls through to the backup scan (and, on ErrFull, the last-resort
// main sweep), the counting decorator must observe O(n/64) word-level atomics
// — not O(n) per-slot probes — while the handle's probe accounting still
// records slots examined, so LastProbes and ErrFull semantics are unchanged
// from the per-slot implementation.
func TestSweepWordOps(t *testing.T) {
	const n = 256
	counters := make(map[SpaceRole]*tas.CountingSpace)
	la := MustNew(Config{Capacity: n, Seed: 1, Instrument: func(role SpaceRole, inner tas.Space) tas.Space {
		c := tas.NewCountingSpace(inner)
		counters[role] = c
		return c
	}})
	layout := la.Layout()
	mainSize := layout.MainSize()

	// Fill the whole main array and all but the last backup slot.
	fillSpace(t, la.MainSpace(), 0)
	fillSpace(t, la.BackupSpace(), 1)
	counters[RoleMain].ResetCounters()
	counters[RoleBackup].ResetCounters()

	h := la.Handle().(*Handle)
	name, err := h.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if want := mainSize + n - 1; name != want {
		t.Fatalf("Get = %d, want the last backup slot %d", name, want)
	}
	if !h.LastUsedBackup() {
		t.Fatal("LastUsedBackup() = false after a backup sweep")
	}
	// Slots examined: one per batch trial plus the full backup scan.
	if want := layout.NumBatches() + n; h.LastProbes() != want {
		t.Fatalf("LastProbes = %d, want %d slots examined", h.LastProbes(), want)
	}
	// Atomics issued: one test-and-set per batch trial, then one word
	// operation per 64 backup slots.
	backupWords := (n + tas.WordBits - 1) / tas.WordBits
	if got, want := counters[RoleMain].Counters().Probes, uint64(layout.NumBatches()); got != want {
		t.Errorf("main space atomics = %d during the backup sweep, want %d", got, want)
	}
	if got, want := counters[RoleBackup].Counters().Probes, uint64(backupWords); got != want {
		t.Errorf("backup sweep atomics = %d, want %d (= ceil(n/64) word ops)", got, want)
	}

	// With the namespace now completely full, a Get must sweep everything,
	// fail with ErrFull, and still only issue O(n/64) word atomics.
	counters[RoleMain].ResetCounters()
	counters[RoleBackup].ResetCounters()
	h2 := la.Handle().(*Handle)
	if _, err := h2.Get(); err != activity.ErrFull {
		t.Fatalf("Get on a full namespace = %v, want ErrFull", err)
	}
	if want := layout.NumBatches() + n + mainSize; h2.LastProbes() != want {
		t.Fatalf("failed-Get LastProbes = %d, want %d slots examined", h2.LastProbes(), want)
	}
	mainWords := (mainSize + tas.WordBits - 1) / tas.WordBits
	if got, want := counters[RoleMain].Counters().Probes, uint64(layout.NumBatches()+mainWords); got != want {
		t.Errorf("failed-Get main atomics = %d, want %d (batch trials + ceil(mainSize/64))", got, want)
	}
	if got, want := counters[RoleBackup].Counters().Probes, uint64(backupWords); got != want {
		t.Errorf("failed-Get backup atomics = %d, want %d", got, want)
	}
	if h2.Stats().FailedOps != 1 {
		t.Fatalf("FailedOps = %d, want 1", h2.Stats().FailedOps)
	}
}

// TestSweepFindsLastFreeSlotFastPath is TestSweepWordOps's dispatch-free
// sibling: on the uninstrumented bitmap path the word-stepped sweeps must
// find the single remaining slot anywhere in the namespace and report the
// same slots-examined probe counts.
func TestSweepFindsLastFreeSlotFastPath(t *testing.T) {
	const n = 192
	for _, probe := range []ProbeMode{ProbeSlot, ProbeWord} {
		probe := probe
		t.Run(probe.String(), func(t *testing.T) {
			la := MustNew(Config{Capacity: n, Seed: 7, Probe: probe})
			mainSize := la.Layout().MainSize()
			fillSpace(t, la.MainSpace(), 0)
			fillSpace(t, la.BackupSpace(), 1)

			h := la.Handle().(*Handle)
			name, err := h.Get()
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if want := mainSize + n - 1; name != want {
				t.Fatalf("Get = %d, want %d", name, want)
			}
			if want := la.Layout().NumBatches() + n; h.LastProbes() != want {
				t.Fatalf("LastProbes = %d, want %d", h.LastProbes(), want)
			}
			h2 := la.Handle().(*Handle)
			if _, err := h2.Get(); err != activity.ErrFull {
				t.Fatalf("Get on full namespace = %v, want ErrFull", err)
			}
			if want := la.Layout().NumBatches() + n + mainSize; h2.LastProbes() != want {
				t.Fatalf("failed-Get LastProbes = %d, want %d", h2.LastProbes(), want)
			}
			// Freeing the swept-up slot reopens the namespace.
			if err := h.Free(); err != nil {
				t.Fatalf("Free: %v", err)
			}
			if _, err := h2.Get(); err != nil {
				t.Fatalf("Get after Free: %v", err)
			}
		})
	}
}
