// Package rebalance plans live partition migrations for the cluster layer.
// It is deliberately pure and dependency-free: the planner maps an observed
// load topology (who owns which partitions, how loaded each is, which
// members are draining or empty) to at most one migration Plan, and the
// cluster's steward executes it — fence, snapshot ship, fenced cutover —
// then observes again. One move per round keeps the system quiescent
// between epochs and makes every decision individually auditable in the
// event journal.
package rebalance

import (
	"fmt"
	"sort"
	"sync"
)

// MemberLoad is one serving member's observed load: the partitions it owns
// and each partition's load factor (active leases / capacity, the same
// signal /stats and /metrics export).
type MemberLoad struct {
	// ID is the member's cluster ID.
	ID int
	// State is the member's lifecycle state (cluster.State* vocabulary:
	// "joining", "live", "draining", "down", "left").
	State string
	// Partitions maps owned partition -> load factor in [0, 1].
	Partitions map[int]float64
}

// Plan is one migration decision: move Partition from member From to member
// To. Reason names the rule that fired, for the journal.
type Plan struct {
	Partition int
	From      int
	To        int
	Reason    string
}

func (p Plan) String() string {
	return fmt.Sprintf("partition %d: %d -> %d (%s)", p.Partition, p.From, p.To, p.Reason)
}

// Config parameterizes the planner.
type Config struct {
	// Threshold is the load-factor spread (max member mean load - min member
	// mean load) above which the planner moves a hot partition to the
	// coolest member. Zero or negative disables load-driven moves; drain
	// and empty-member moves always run (they are correctness-adjacent:
	// a draining member must empty, a joined member must receive work).
	Threshold float64
}

// Next returns the single next migration to perform, or ok=false when the
// topology needs no move. Decision order:
//
//  1. drain: a draining member still owns partitions — move its hottest one
//     to the live member owning the fewest partitions.
//  2. empty: a live member owns nothing (fresh join or rejoin) — move the
//     hottest partition of the most-loaded donor that can spare one.
//  3. spread (only with Threshold > 0, and only when the mean-load spread
//     between the hottest and coolest live members exceeds it):
//     count balance first — while the biggest owner is two or more
//     partitions ahead of the smallest, its coolest partition moves to the
//     smallest owner (under routing that spreads requests per member,
//     per-partition load is inversely proportional to ownership, so equal
//     counts are the balanced state; moving the coolest, not the hottest,
//     partition keeps hot partitions from bouncing). Once counts are within
//     one, a remaining spread is content skew: the hot member's hottest
//     partition moves downhill to the coolest member.
//
// The function is deterministic: equal candidates tie-break on lowest ID,
// so concurrent stewards (which cannot happen, but cheap insurance) and
// replayed decisions agree.
func Next(members []MemberLoad, cfg Config) (Plan, bool) {
	var live, draining []MemberLoad
	for _, m := range members {
		switch m.State {
		case "live":
			live = append(live, m)
		case "draining":
			draining = append(draining, m)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].ID < live[j].ID })
	sort.Slice(draining, func(i, j int) bool { return draining[i].ID < draining[j].ID })
	if len(live) == 0 {
		return Plan{}, false
	}

	// Rule 1: drain. Any partition on a draining member must move. The
	// target is the fewest-owned live member, not the lowest-mean one:
	// owning many partitions dilutes a member's mean load, so a mean-load
	// target would keep "winning" and absorb the whole drain itself.
	for _, d := range draining {
		if len(d.Partitions) == 0 {
			continue
		}
		p, _ := hottest(d.Partitions)
		to := fewestOwned(live)
		return Plan{Partition: p, From: d.ID, To: to, Reason: "drain"}, true
	}

	// Rule 2: empty live member. Donate from the most-loaded member that
	// owns at least two partitions (never strip a member bare to fill
	// another).
	for _, m := range live {
		if len(m.Partitions) != 0 {
			continue
		}
		donor, ok := biggestDonor(live)
		if !ok {
			break
		}
		p, _ := hottest(donor.Partitions)
		return Plan{Partition: p, From: donor.ID, To: m.ID, Reason: "join_fill"}, true
	}

	// Rule 3: load spread.
	if cfg.Threshold <= 0 || len(live) < 2 {
		return Plan{}, false
	}
	hi, lo := live[0], live[0]
	for _, m := range live[1:] {
		if meanLoad(m) > meanLoad(hi) {
			hi = m
		}
		if meanLoad(m) < meanLoad(lo) {
			lo = m
		}
	}
	if hi.ID == lo.ID || meanLoad(hi)-meanLoad(lo) <= cfg.Threshold {
		return Plan{}, false
	}
	// Count balance first: while ownership counts are uneven the spread is
	// (at least partly) structural, and count moves converge — every move
	// shrinks the count gap, so this sub-rule runs itself quiet instead of
	// trading partitions back and forth with the content-skew move below.
	smallest := live[0]
	for _, m := range live[1:] {
		if len(m.Partitions) < len(smallest.Partitions) {
			smallest = m
		}
	}
	if donor, ok := biggestDonor(live); ok && len(donor.Partitions) >= len(smallest.Partitions)+2 {
		p, _ := coolestPartition(donor.Partitions)
		return Plan{Partition: p, From: donor.ID, To: smallest.ID, Reason: "load_spread"}, true
	}
	// Counts are within one: a remaining spread is content skew. The hot
	// member's hottest partition moves downhill to the coolest member —
	// provided it can spare one.
	if len(hi.Partitions) < 2 {
		return Plan{}, false
	}
	p, _ := hottest(hi.Partitions)
	return Plan{Partition: p, From: hi.ID, To: lo.ID, Reason: "load_spread"}, true
}

// hottest returns the highest-load partition in the map (lowest ID on
// ties).
func hottest(parts map[int]float64) (int, float64) {
	best, bestLoad := -1, -1.0
	for p, load := range parts {
		if load > bestLoad || (load == bestLoad && p < best) {
			best, bestLoad = p, load
		}
	}
	return best, bestLoad
}

// coolestPartition returns the lowest-load partition in the map (lowest ID
// on ties).
func coolestPartition(parts map[int]float64) (int, float64) {
	best, bestLoad := -1, 2.0
	for p, load := range parts {
		if load < bestLoad || (load == bestLoad && p < best) {
			best, bestLoad = p, load
		}
	}
	return best, bestLoad
}

// fewestOwned returns the live member ID owning the fewest partitions
// (lowest mean load breaks ties, then lowest ID). live must be non-empty
// and ID-sorted.
func fewestOwned(live []MemberLoad) int {
	best := live[0]
	for _, m := range live[1:] {
		if len(m.Partitions) < len(best.Partitions) ||
			(len(m.Partitions) == len(best.Partitions) && meanLoad(m) < meanLoad(best)) {
			best = m
		}
	}
	return best.ID
}

// biggestDonor returns the live member owning the most partitions, provided
// it can spare one (owns >= 2).
func biggestDonor(live []MemberLoad) (MemberLoad, bool) {
	var best MemberLoad
	found := false
	for _, m := range live {
		if len(m.Partitions) < 2 {
			continue
		}
		if !found || len(m.Partitions) > len(best.Partitions) {
			best, found = m, true
		}
	}
	return best, found
}

// meanLoad is the member's average partition load factor; 0 when it owns
// nothing.
func meanLoad(m MemberLoad) float64 {
	if len(m.Partitions) == 0 {
		return 0
	}
	var sum float64
	for _, l := range m.Partitions {
		sum += l
	}
	return sum / float64(len(m.Partitions))
}

// Cache is the steward's concurrent view of observed loads: stats fetchers
// write per-member observations from their own goroutines while the planner
// snapshots the whole topology. A plain mutex — observation rates are a few
// per second, never hot.
type Cache struct {
	mu      sync.Mutex
	members map[int]MemberLoad
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{members: make(map[int]MemberLoad)}
}

// Observe records one member's current load, replacing any previous
// observation. The partitions map is copied, so callers may reuse theirs.
func (c *Cache) Observe(m MemberLoad) {
	parts := make(map[int]float64, len(m.Partitions))
	for p, l := range m.Partitions {
		parts[p] = l
	}
	m.Partitions = parts
	c.mu.Lock()
	c.members[m.ID] = m
	c.mu.Unlock()
}

// Forget drops a member's observation (it died or left).
func (c *Cache) Forget(id int) {
	c.mu.Lock()
	delete(c.members, id)
	c.mu.Unlock()
}

// Snapshot returns every current observation, ID-sorted. The returned
// slice and its maps are copies the caller owns.
func (c *Cache) Snapshot() []MemberLoad {
	c.mu.Lock()
	out := make([]MemberLoad, 0, len(c.members))
	for _, m := range c.members {
		parts := make(map[int]float64, len(m.Partitions))
		for p, l := range m.Partitions {
			parts[p] = l
		}
		m.Partitions = parts
		out = append(out, m)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
