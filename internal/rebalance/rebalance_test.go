package rebalance

import (
	"fmt"
	"sync"
	"testing"
)

func TestNextDrainFirst(t *testing.T) {
	members := []MemberLoad{
		{ID: 0, State: "live", Partitions: map[int]float64{0: 0.9, 1: 0.9}},
		{ID: 1, State: "draining", Partitions: map[int]float64{2: 0.1, 3: 0.7}},
		{ID: 2, State: "live", Partitions: map[int]float64{4: 0.0}},
	}
	plan, ok := Next(members, Config{Threshold: 0.1})
	if !ok {
		t.Fatal("expected a drain plan")
	}
	if plan.From != 1 || plan.Reason != "drain" {
		t.Fatalf("expected drain from member 1, got %+v", plan)
	}
	if plan.Partition != 3 {
		t.Fatalf("expected the hottest partition (3) to move first, got %d", plan.Partition)
	}
	if plan.To != 2 {
		t.Fatalf("expected the fewest-owned live member (2) as target, got %d", plan.To)
	}
}

func TestNextFillsEmptyMember(t *testing.T) {
	members := []MemberLoad{
		{ID: 0, State: "live", Partitions: map[int]float64{0: 0.5, 1: 0.8, 2: 0.2}},
		{ID: 1, State: "live", Partitions: map[int]float64{3: 0.4}},
		{ID: 2, State: "live", Partitions: map[int]float64{}},
	}
	plan, ok := Next(members, Config{})
	if !ok {
		t.Fatal("expected a join_fill plan")
	}
	if plan != (Plan{Partition: 1, From: 0, To: 2, Reason: "join_fill"}) {
		t.Fatalf("unexpected plan %+v", plan)
	}
}

func TestNextNeverStripsSinglePartitionDonor(t *testing.T) {
	members := []MemberLoad{
		{ID: 0, State: "live", Partitions: map[int]float64{0: 1.0}},
		{ID: 1, State: "live", Partitions: map[int]float64{}},
	}
	if plan, ok := Next(members, Config{Threshold: 0.01}); ok {
		t.Fatalf("expected no plan (donor owns a single partition), got %+v", plan)
	}
}

func TestNextLoadSpread(t *testing.T) {
	members := []MemberLoad{
		{ID: 0, State: "live", Partitions: map[int]float64{0: 0.9, 1: 0.8}},
		{ID: 1, State: "live", Partitions: map[int]float64{2: 0.1, 3: 0.1}},
	}
	plan, ok := Next(members, Config{Threshold: 0.2})
	if !ok {
		t.Fatal("expected a load_spread plan")
	}
	if plan != (Plan{Partition: 0, From: 0, To: 1, Reason: "load_spread"}) {
		t.Fatalf("unexpected plan %+v", plan)
	}
	// Below the threshold: no move.
	if plan, ok := Next(members, Config{Threshold: 0.9}); ok {
		t.Fatalf("expected no plan under a 0.9 threshold, got %+v", plan)
	}
	// Threshold disabled: no move.
	if plan, ok := Next(members, Config{}); ok {
		t.Fatalf("expected no plan with load moves disabled, got %+v", plan)
	}
}

// TestNextLoadSpreadPullsToStarvedMember covers the pull-downhill branch:
// the hottest member owns a single partition (per-member routing concentrates
// its share on it), so the biggest owner sheds its coolest partition to it.
func TestNextLoadSpreadPullsToStarvedMember(t *testing.T) {
	members := []MemberLoad{
		{ID: 0, State: "live", Partitions: map[int]float64{0: 0.2, 1: 0.1, 2: 0.2, 3: 0.2}},
		{ID: 1, State: "live", Partitions: map[int]float64{4: 0.2, 5: 0.2, 6: 0.2}},
		{ID: 2, State: "live", Partitions: map[int]float64{7: 0.8}},
	}
	plan, ok := Next(members, Config{Threshold: 0.2})
	if !ok {
		t.Fatal("expected a pull-downhill load_spread plan")
	}
	if plan != (Plan{Partition: 1, From: 0, To: 2, Reason: "load_spread"}) {
		t.Fatalf("expected the biggest owner's coolest partition to move to the starved member, got %+v", plan)
	}
}

// TestNextLoadSpreadStopsAtBalancedCounts: when the biggest owner is at most
// one partition ahead of the starved member, the topology is as balanced as
// the partition count allows — a persistent spread plans nothing rather than
// ping-ponging the single-partition hole between members.
func TestNextLoadSpreadStopsAtBalancedCounts(t *testing.T) {
	members := []MemberLoad{
		{ID: 0, State: "live", Partitions: map[int]float64{0: 0.2, 1: 0.2}},
		{ID: 1, State: "live", Partitions: map[int]float64{2: 0.2, 3: 0.2}},
		{ID: 2, State: "live", Partitions: map[int]float64{4: 0.8}},
	}
	if plan, ok := Next(members, Config{Threshold: 0.2}); ok {
		t.Fatalf("counts differ by one: expected no plan, got %+v", plan)
	}
}

func TestNextQuiescent(t *testing.T) {
	members := []MemberLoad{
		{ID: 0, State: "live", Partitions: map[int]float64{0: 0.5, 1: 0.5}},
		{ID: 1, State: "live", Partitions: map[int]float64{2: 0.5, 3: 0.5}},
		{ID: 2, State: "down", Partitions: nil},
	}
	if plan, ok := Next(members, Config{Threshold: 0.2}); ok {
		t.Fatalf("balanced topology should plan nothing, got %+v", plan)
	}
}

// TestCacheConcurrency hammers the load cache from concurrent observers and
// planners; run under -race it is the planner-cache race test.
func TestCacheConcurrency(t *testing.T) {
	c := NewCache()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Observe(MemberLoad{
					ID:    w,
					State: "live",
					Partitions: map[int]float64{
						i % 8: float64(i) / 500,
					},
				})
				if i%50 == 0 {
					c.Forget((w + 1) % 4)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			snap := c.Snapshot()
			// The snapshot must be safe to read and mutate while observers
			// keep writing.
			for i := range snap {
				snap[i].Partitions[99] = 1
			}
			_, _ = Next(snap, Config{Threshold: 0.1})
		}
	}()
	wg.Wait()
}

func TestCacheSnapshotIsACopy(t *testing.T) {
	c := NewCache()
	parts := map[int]float64{0: 0.5}
	c.Observe(MemberLoad{ID: 0, State: "live", Partitions: parts})
	parts[0] = 0.9 // caller reuses its map; the cache must not see it
	snap := c.Snapshot()
	if got := snap[0].Partitions[0]; got != 0.5 {
		t.Fatalf("cache aliased the caller's map: load %v", got)
	}
	snap[0].Partitions[0] = 0.1 // and mutating the snapshot must not write back
	if got := c.Snapshot()[0].Partitions[0]; got != 0.5 {
		t.Fatalf("snapshot aliased the cache: load %v", got)
	}
}

func TestPlanString(t *testing.T) {
	got := Plan{Partition: 3, From: 1, To: 2, Reason: "drain"}.String()
	want := fmt.Sprintf("partition %d: %d -> %d (drain)", 3, 1, 2)
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
