package barrier

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/levelarray/levelarray/internal/registry"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero MaxThreads accepted")
	}
	b, err := New(Config{MaxThreads: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if b.Registry().Capacity() != 4 {
		t.Fatalf("registry capacity = %d, want 4", b.Registry().Capacity())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(Config{})
}

func TestCustomRegistry(t *testing.T) {
	reg := registry.MustNew(registry.Deterministic, registry.Options{Capacity: 4})
	b := MustNew(Config{MaxThreads: 4, Registry: reg})
	if b.Registry() != reg {
		t.Fatal("custom registry not used")
	}
}

func TestParticipantLifecycle(t *testing.T) {
	b := MustNew(Config{MaxThreads: 2})
	p := b.Participant()
	if p.Joined() {
		t.Fatal("fresh participant joined")
	}
	if _, err := p.Await(); err != ErrNotJoined {
		t.Fatalf("Await before Join = %v, want ErrNotJoined", err)
	}
	if err := p.Leave(); err != ErrNotJoined {
		t.Fatalf("Leave before Join = %v, want ErrNotJoined", err)
	}
	if err := p.Join(); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if err := p.Join(); err != ErrAlreadyJoined {
		t.Fatalf("double Join = %v, want ErrAlreadyJoined", err)
	}
	if !p.Joined() || b.Joined() != 1 {
		t.Fatal("membership accounting wrong after Join")
	}
	if name, ok := p.Name(); !ok || name < 0 {
		t.Fatalf("Name = (%d, %v)", name, ok)
	}
	if members := b.Members(); len(members) != 1 {
		t.Fatalf("Members = %v, want one entry", members)
	}
	// A single joined participant passes the barrier immediately.
	round, err := p.Await()
	if err != nil {
		t.Fatalf("Await: %v", err)
	}
	if round != 1 || b.Rounds() != 1 {
		t.Fatalf("round = %d, Rounds = %d, want 1", round, b.Rounds())
	}
	if err := p.Leave(); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if b.Joined() != 0 || len(b.Members()) != 0 {
		t.Fatal("membership accounting wrong after Leave")
	}
	if p.RegistrationStats().Ops != 1 {
		t.Fatalf("registration stats = %+v", p.RegistrationStats())
	}
}

// TestBarrierSynchronizesRounds runs several participants through many rounds
// and checks the fundamental barrier property: no participant enters round
// r+1 before every participant has finished round r.
func TestBarrierSynchronizesRounds(t *testing.T) {
	const (
		participants = 8
		rounds       = 50
	)
	b := MustNew(Config{MaxThreads: participants})

	// Join everyone before any Await: membership changes are only allowed at
	// quiescent points.
	members := make([]*Participant, participants)
	for i := range members {
		members[i] = b.Participant()
		if err := members[i].Join(); err != nil {
			t.Fatalf("participant %d join: %v", i, err)
		}
	}

	// perRound[r] counts how many participants have completed round r.
	perRound := make([]atomic.Int64, rounds+1)
	var wg sync.WaitGroup
	for i := 0; i < participants; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := members[i]
			for r := 0; r < rounds; r++ {
				// Everyone must have finished the previous round before
				// anyone is released from this one.
				if r > 0 && perRound[r-1].Load() != participants {
					t.Errorf("participant %d entered round %d before round %d completed",
						i, r, r-1)
					return
				}
				perRound[r].Add(1)
				if _, err := p.Await(); err != nil {
					t.Errorf("participant %d await: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if b.Rounds() < rounds {
		t.Fatalf("completed %d rounds, want at least %d", b.Rounds(), rounds)
	}
	for r := 0; r < rounds; r++ {
		if perRound[r].Load() != participants {
			t.Fatalf("round %d completed by %d of %d participants", r, perRound[r].Load(), participants)
		}
	}
}

// TestDynamicMembership exercises joining and leaving between rounds.
func TestDynamicMembership(t *testing.T) {
	b := MustNew(Config{MaxThreads: 4})
	p1 := b.Participant()
	p2 := b.Participant()
	if err := p1.Join(); err != nil {
		t.Fatalf("p1 join: %v", err)
	}
	if err := p2.Join(); err != nil {
		t.Fatalf("p2 join: %v", err)
	}

	// Round with two participants: p1 blocks until p2 arrives.
	p1Done := make(chan struct{})
	go func() {
		if _, err := p1.Await(); err != nil {
			t.Errorf("p1 await: %v", err)
		}
		close(p1Done)
	}()
	select {
	case <-p1Done:
		t.Fatal("p1 released before p2 arrived")
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := p2.Await(); err != nil {
		t.Fatalf("p2 await: %v", err)
	}
	<-p1Done

	// p2 leaves; a round with only p1 completes immediately.
	if err := p2.Leave(); err != nil {
		t.Fatalf("p2 leave: %v", err)
	}
	if b.Joined() != 1 {
		t.Fatalf("Joined = %d, want 1", b.Joined())
	}
	if _, err := p1.Await(); err != nil {
		t.Fatalf("p1 solo await: %v", err)
	}
	if b.Rounds() != 2 {
		t.Fatalf("Rounds = %d, want 2", b.Rounds())
	}

	// A third participant can reuse the released slot.
	p3 := b.Participant()
	if err := p3.Join(); err != nil {
		t.Fatalf("p3 join: %v", err)
	}
	if b.Joined() != 2 {
		t.Fatalf("Joined = %d, want 2", b.Joined())
	}
	if err := p1.Leave(); err != nil {
		t.Fatalf("p1 leave: %v", err)
	}
	if err := p3.Leave(); err != nil {
		t.Fatalf("p3 leave: %v", err)
	}
}

// TestManyRoundsManyParticipants is a stress test for lost releases.
func TestManyRoundsManyParticipants(t *testing.T) {
	const (
		participants = 16
		rounds       = 200
	)
	b := MustNew(Config{MaxThreads: participants})
	members := make([]*Participant, participants)
	for i := range members {
		members[i] = b.Participant()
		if err := members[i].Join(); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	var wg sync.WaitGroup
	var maxRound atomic.Uint64
	for i := 0; i < participants; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := members[i]
			for r := 0; r < rounds; r++ {
				round, err := p.Await()
				if err != nil {
					t.Errorf("await: %v", err)
					return
				}
				for {
					cur := maxRound.Load()
					if round <= cur || maxRound.CompareAndSwap(cur, round) {
						break
					}
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("barrier deadlocked; completed %d rounds of %d", maxRound.Load(), rounds)
	}
	if t.Failed() {
		return
	}
	if b.Rounds() != rounds {
		t.Fatalf("Rounds = %d, want %d", b.Rounds(), rounds)
	}
}
