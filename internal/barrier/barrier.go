// Package barrier implements the shared-memory barrier application the
// paper's introduction motivates: a barrier with *dynamic membership*, where
// threads may join and leave between rounds. Membership is managed through an
// activity array — joining is a Get (the registration whose cost the
// LevelArray minimizes), leaving is a Free, and the barrier's release
// condition is computed from a Collect of the registered participants.
//
// The barrier itself is sense-reversing: each round has a sense bit;
// participants arriving at the barrier increment the arrival counter, and the
// last arrival of the round flips the sense, releasing everyone.
package barrier

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/core"
)

// Config parameterizes a dynamic barrier.
type Config struct {
	// MaxThreads is the maximum number of simultaneously joined participants.
	MaxThreads int
	// Registry optionally supplies the membership activity array. Nil
	// selects a LevelArray of capacity MaxThreads.
	Registry activity.Array
	// Seed seeds the default LevelArray registry.
	Seed uint64
}

// Barrier is a sense-reversing barrier with dynamic membership.
type Barrier struct {
	registry activity.Array

	// mu-free state: the current round's sense and arrival count, plus the
	// number of currently joined participants (maintained on join/leave so
	// the hot path does not need a Collect).
	sense   atomic.Uint32
	arrived atomic.Int64
	joined  atomic.Int64

	rounds atomic.Uint64
}

// New builds a dynamic barrier.
func New(cfg Config) (*Barrier, error) {
	if cfg.MaxThreads < 1 {
		return nil, fmt.Errorf("barrier: max threads %d must be at least 1", cfg.MaxThreads)
	}
	reg := cfg.Registry
	if reg == nil {
		la, err := core.New(core.Config{Capacity: cfg.MaxThreads, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("barrier: building registry: %w", err)
		}
		reg = la
	}
	return &Barrier{registry: reg}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Barrier {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Registry returns the membership activity array.
func (b *Barrier) Registry() activity.Array { return b.registry }

// Joined returns the number of currently joined participants.
func (b *Barrier) Joined() int { return int(b.joined.Load()) }

// Rounds returns the number of completed barrier rounds.
func (b *Barrier) Rounds() uint64 { return b.rounds.Load() }

// Members returns the activity-array names of the currently joined
// participants (a Collect over the membership registry).
func (b *Barrier) Members() []int {
	return b.registry.Collect(nil)
}

// Errors returned by participants.
var (
	// ErrNotJoined is returned by Await and Leave when the participant has
	// not joined.
	ErrNotJoined = errors.New("barrier: participant not joined")
	// ErrAlreadyJoined is returned by Join when the participant already
	// joined.
	ErrAlreadyJoined = errors.New("barrier: participant already joined")
)

// Participant is a per-thread endpoint of the barrier. It is not safe for
// concurrent use.
type Participant struct {
	barrier *Barrier
	handle  activity.Handle
	joined  bool
}

// Participant returns a new, not-yet-joined participant.
func (b *Barrier) Participant() *Participant {
	return &Participant{barrier: b, handle: b.registry.Handle()}
}

// Join registers the participant. It must not be called between another
// participant's arrival and the round's release (joining is allowed only at
// quiescent points or before a round starts); callers coordinate this
// externally, typically by joining before starting their work loop.
func (p *Participant) Join() error {
	if p.joined {
		return ErrAlreadyJoined
	}
	if _, err := p.handle.Get(); err != nil {
		return fmt.Errorf("barrier: joining: %w", err)
	}
	p.barrier.joined.Add(1)
	p.joined = true
	return nil
}

// Leave deregisters the participant. Like Join it must be called at a
// quiescent point (not while other participants are blocked in Await).
func (p *Participant) Leave() error {
	if !p.joined {
		return ErrNotJoined
	}
	if err := p.handle.Free(); err != nil {
		return fmt.Errorf("barrier: leaving: %w", err)
	}
	p.barrier.joined.Add(-1)
	p.joined = false
	return nil
}

// Joined reports whether the participant is currently a member.
func (p *Participant) Joined() bool { return p.joined }

// Name returns the participant's activity-array name.
func (p *Participant) Name() (int, bool) { return p.handle.Name() }

// RegistrationStats returns the probe statistics of the membership handle.
func (p *Participant) RegistrationStats() activity.ProbeStats { return p.handle.Stats() }

// Await blocks until every currently joined participant has called Await for
// this round, then returns the round number that just completed.
func (p *Participant) Await() (uint64, error) {
	if !p.joined {
		return 0, ErrNotJoined
	}
	b := p.barrier
	mySense := b.sense.Load()
	arrived := b.arrived.Add(1)
	if arrived >= b.joined.Load() {
		// Last arrival: release the round. The arrival counter is reset
		// before the sense flips so late spinners never observe a stale
		// counter for the next round.
		round := b.rounds.Add(1)
		b.arrived.Store(0)
		b.sense.Store(mySense ^ 1)
		return round, nil
	}
	for b.sense.Load() == mySense {
		runtime.Gosched()
	}
	return b.rounds.Load(), nil
}
