package adversary

import (
	"testing"
	"testing/quick"

	"github.com/levelarray/levelarray/internal/sched"
	"github.com/levelarray/levelarray/internal/spec"
)

func TestRoundRobinCoversAllProcesses(t *testing.T) {
	const n = 7
	s := RoundRobin(n)
	seen := make(map[int]int)
	for step := uint64(0); step < 70; step++ {
		pid := s.Next(step)
		if pid < 0 || pid >= n {
			t.Fatalf("pid %d out of range", pid)
		}
		seen[pid]++
	}
	for pid := 0; pid < n; pid++ {
		if seen[pid] != 10 {
			t.Fatalf("process %d scheduled %d times, want 10", pid, seen[pid])
		}
	}
}

func TestUniformRandomProperties(t *testing.T) {
	const n = 8
	s := UniformRandom(n, 42)
	counts := make([]int, n)
	for step := uint64(0); step < 8000; step++ {
		pid := s.Next(step)
		if pid < 0 || pid >= n {
			t.Fatalf("pid %d out of range", pid)
		}
		counts[pid]++
	}
	for pid, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("process %d scheduled %d times out of 8000; far from uniform", pid, c)
		}
	}
	// Determinism: same seed gives the same schedule.
	again := UniformRandom(n, 42)
	for step := uint64(0); step < 100; step++ {
		if s.Next(step) != again.Next(step) {
			t.Fatal("schedule not deterministic for a fixed seed")
		}
	}
	// Different seeds give different schedules.
	other := UniformRandom(n, 43)
	same := 0
	for step := uint64(0); step < 100; step++ {
		if s.Next(step) == other.Next(step) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestBurstySchedulesInBursts(t *testing.T) {
	const n = 4
	const burst = 10
	s := Bursty(n, burst, 7)
	for b := uint64(0); b < 50; b++ {
		first := s.Next(b * burst)
		for i := uint64(1); i < burst; i++ {
			if got := s.Next(b*burst + i); got != first {
				t.Fatalf("burst %d not constant: step %d has %d, first %d", b, i, got, first)
			}
		}
	}
	// Zero burst length is remapped to 1 rather than dividing by zero.
	z := Bursty(n, 0, 7)
	if pid := z.Next(5); pid < 0 || pid >= n {
		t.Fatalf("zero-burst schedule returned %d", pid)
	}
}

func TestSkewedFavorsProcessZero(t *testing.T) {
	const n = 8
	s := Skewed(n, n*3, 11)
	zero := 0
	const steps = 4000
	for step := uint64(0); step < steps; step++ {
		pid := s.Next(step)
		if pid < 0 || pid >= n {
			t.Fatalf("pid %d out of range", pid)
		}
		if pid == 0 {
			zero++
		}
	}
	// Expected share is 24/31 ≈ 0.77.
	if float64(zero)/steps < 0.5 {
		t.Fatalf("process 0 scheduled only %d/%d times despite heavy skew", zero, steps)
	}
	// Degenerate cases.
	if Skewed(1, 5, 1).Next(3) != 0 {
		t.Fatal("single-process skewed schedule must return 0")
	}
	if pid := Skewed(4, 0, 1).Next(3); pid < 0 || pid >= 4 {
		t.Fatalf("non-positive weight schedule returned %d", pid)
	}
}

func TestPartitionedAlternatesHalves(t *testing.T) {
	const n = 8
	const phase = 16
	s := Partitioned(n, phase)
	for step := uint64(0); step < phase; step++ {
		if pid := s.Next(step); pid >= n/2 {
			t.Fatalf("first phase scheduled pid %d from the second half", pid)
		}
	}
	for step := uint64(phase); step < 2*phase; step++ {
		if pid := s.Next(step); pid < n/2 {
			t.Fatalf("second phase scheduled pid %d from the first half", pid)
		}
	}
	// Degenerate parameters must not panic or divide by zero.
	if pid := Partitioned(1, 0).Next(9); pid != 0 {
		t.Fatalf("Partitioned(1,0) = %d, want 0", pid)
	}
}

func TestInputSpecBuild(t *testing.T) {
	spec := InputSpec{Rounds: 3, CallsAfterGet: 2, CallsAfterFree: 1, CollectEvery: 2}
	if err := spec.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	in := spec.Build()
	if err := in.Validate(); err != nil {
		t.Fatalf("built input invalid: %v", err)
	}
	if got := in.CountKind(sched.OpGet); got != 3 {
		t.Fatalf("Gets = %d, want 3", got)
	}
	if got := in.CountKind(sched.OpFree); got != 3 {
		t.Fatalf("Frees = %d, want 3", got)
	}
	if got := in.CountKind(sched.OpCall); got != 3*(2+1) {
		t.Fatalf("Calls = %d, want 9", got)
	}
	if got := in.CountKind(sched.OpCollect); got != 1 {
		t.Fatalf("Collects = %d, want 1 (after rounds 2 of 3)", got)
	}
}

func TestInputSpecValidate(t *testing.T) {
	bad := []InputSpec{
		{Rounds: -1},
		{Rounds: 1, CallsAfterGet: -2},
		{Rounds: 1, CallsAfterFree: -1},
		{Rounds: 1, CollectEvery: -1},
	}
	for _, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", spec)
		}
	}
}

func TestUniformInputs(t *testing.T) {
	inputs := UniformInputs(5, InputSpec{Rounds: 2})
	if len(inputs) != 5 {
		t.Fatalf("len = %d, want 5", len(inputs))
	}
	for i, in := range inputs {
		if err := in.Validate(); err != nil {
			t.Fatalf("input %d invalid: %v", i, err)
		}
		if in.CountKind(sched.OpGet) != 2 {
			t.Fatalf("input %d has %d Gets, want 2", i, in.CountKind(sched.OpGet))
		}
	}
}

func TestOneShotInputs(t *testing.T) {
	inputs := OneShotInputs(4)
	if len(inputs) != 4 {
		t.Fatalf("len = %d, want 4", len(inputs))
	}
	for _, in := range inputs {
		if len(in) != 1 || in[0].Kind != sched.OpGet {
			t.Fatalf("one-shot input = %v", in)
		}
	}
}

func TestJitteredInputs(t *testing.T) {
	inputs := JitteredInputs(6, 5, 4, 99)
	if len(inputs) != 6 {
		t.Fatalf("len = %d, want 6", len(inputs))
	}
	allIdentical := true
	for i, in := range inputs {
		if err := in.Validate(); err != nil {
			t.Fatalf("input %d invalid: %v", i, err)
		}
		if in.CountKind(sched.OpGet) != 5 || in.CountKind(sched.OpFree) != 5 {
			t.Fatalf("input %d has wrong Get/Free counts", i)
		}
		if len(in) != len(inputs[0]) {
			allIdentical = false
		}
	}
	if allIdentical {
		// With 6 processes and random padding in [0,4], identical lengths
		// everywhere would be suspicious (though not impossible); check the
		// content too before failing.
		identicalContent := true
		for _, in := range inputs[1:] {
			for j := range in {
				if j >= len(inputs[0]) || in[j] != inputs[0][j] {
					identicalContent = false
					break
				}
			}
		}
		if identicalContent {
			t.Fatal("jittered inputs are all identical; padding is not applied")
		}
	}
	// Determinism.
	again := JitteredInputs(6, 5, 4, 99)
	for i := range inputs {
		if len(again[i]) != len(inputs[i]) {
			t.Fatal("JitteredInputs is not deterministic")
		}
	}
}

func TestCollectorInputs(t *testing.T) {
	inputs := CollectorInputs(5, 2, 7, InputSpec{Rounds: 3})
	if len(inputs) != 5 {
		t.Fatalf("len = %d, want 5", len(inputs))
	}
	for i := 0; i < 2; i++ {
		if inputs[i].CountKind(sched.OpCollect) != 7 || inputs[i].CountKind(sched.OpGet) != 0 {
			t.Fatalf("collector input %d wrong: %v", i, inputs[i])
		}
	}
	for i := 2; i < 5; i++ {
		if inputs[i].CountKind(sched.OpGet) != 3 {
			t.Fatalf("worker input %d wrong", i)
		}
	}
}

func TestIsCompact(t *testing.T) {
	compact := UniformInputs(4, InputSpec{Rounds: 3, CallsAfterGet: 2})
	if !IsCompact(compact, 16, 2) {
		t.Fatal("bounded-padding inputs reported non-compact")
	}
	// An input holding a name across a huge stretch of Calls is not compact
	// for small bounds.
	var in sched.Input
	in = append(in, sched.Op{Kind: sched.OpGet})
	for i := 0; i < 1000; i++ {
		in = append(in, sched.Op{Kind: sched.OpCall})
	}
	in = append(in, sched.Op{Kind: sched.OpFree})
	if IsCompact([]sched.Input{in}, 4, 1) {
		t.Fatal("1000 calls between Get and Free reported compact for bound n^1 = 4")
	}
	if !IsCompact([]sched.Input{in}, 4, 5) {
		t.Fatal("the same input should be compact for bound n^5")
	}
	if IsCompact(nil, 4, 0) {
		t.Fatal("non-positive bound should never be compact")
	}
}

// Property: every InputSpec with non-negative fields builds a well-formed
// input with the expected operation counts.
func TestQuickInputSpecWellFormed(t *testing.T) {
	prop := func(rounds, cg, cf, ce uint8) bool {
		spec := InputSpec{
			Rounds:         int(rounds % 20),
			CallsAfterGet:  int(cg % 5),
			CallsAfterFree: int(cf % 5),
			CollectEvery:   int(ce % 4),
		}
		in := spec.Build()
		if in.Validate() != nil {
			return false
		}
		return in.CountKind(sched.OpGet) == spec.Rounds &&
			in.CountKind(sched.OpFree) == spec.Rounds
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Integration: every schedule generator drives a full simulation to a
// spec-clean result.
func TestSchedulesDriveValidExecutions(t *testing.T) {
	const n = 8
	schedules := map[string]sched.Schedule{
		"round-robin": RoundRobin(n),
		"uniform":     UniformRandom(n, 5),
		"bursty":      Bursty(n, 25, 5),
		"skewed":      Skewed(n, 16, 5),
		"partitioned": Partitioned(n, 64),
	}
	for name, schedule := range schedules {
		schedule := schedule
		t.Run(name, func(t *testing.T) {
			sim := sched.MustNew(sched.Config{
				Capacity:    n,
				Inputs:      UniformInputs(n, InputSpec{Rounds: 20, CallsAfterGet: 1, CollectEvery: 5}),
				Seed:        77,
				RecordTrace: true,
			})
			if _, err := sim.Run(schedule, 500_000); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if violations := spec.Check(sim.Trace()); len(violations) != 0 {
				t.Fatalf("violations: %v", violations)
			}
			if sim.MergedStats().Ops == 0 {
				t.Fatal("no operations completed")
			}
		})
	}
}
