// Package adversary builds the oblivious-adversary side of a simulation: the
// schedules (which process takes each step) and the process inputs (which
// operations each process performs). Everything here is a deterministic
// function of explicit seeds and the step index, never of the execution, so
// any combination of these generators is a valid oblivious adversary in the
// paper's model.
package adversary

import (
	"fmt"
	"math"

	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/sched"
)

// RoundRobin schedules processes 0..n-1 cyclically. It is the most benign
// schedule: perfectly fair and perfectly interleaved.
func RoundRobin(n int) sched.Schedule {
	return sched.ScheduleFunc(func(step uint64) int {
		return int(step % uint64(n))
	})
}

// UniformRandom schedules a uniformly random process at every step. The
// choice is a pure function of (seed, step), so the schedule is fixed in
// advance as obliviousness requires.
func UniformRandom(n int, seed uint64) sched.Schedule {
	return sched.ScheduleFunc(func(step uint64) int {
		return int(hash(seed, step) % uint64(n))
	})
}

// Bursty schedules processes in bursts: the same process runs for burstLen
// consecutive steps before another (pseudo-randomly chosen) process gets its
// burst. Long bursts model an adversary that lets one thread run many
// operations while others are stalled.
func Bursty(n int, burstLen uint64, seed uint64) sched.Schedule {
	if burstLen == 0 {
		burstLen = 1
	}
	return sched.ScheduleFunc(func(step uint64) int {
		burst := step / burstLen
		return int(hash(seed, burst) % uint64(n))
	})
}

// Skewed schedules process 0 with probability roughly weight/(weight+n-1) and
// the remaining processes uniformly otherwise, modelling a heavily favoured
// thread.
func Skewed(n int, weight int, seed uint64) sched.Schedule {
	if weight < 1 {
		weight = 1
	}
	if n <= 1 {
		return sched.ScheduleFunc(func(uint64) int { return 0 })
	}
	total := uint64(weight + n - 1)
	return sched.ScheduleFunc(func(step uint64) int {
		v := hash(seed, step) % total
		if v < uint64(weight) {
			return 0
		}
		return 1 + int((v-uint64(weight))%uint64(n-1))
	})
}

// Partitioned alternates between two halves of the process set in long
// phases: for phaseLen steps only the first half is scheduled (round-robin),
// then only the second half, and so on. This produces the register-heavy /
// deregister-heavy alternation that stresses rebalancing.
func Partitioned(n int, phaseLen uint64) sched.Schedule {
	if phaseLen == 0 {
		phaseLen = 1
	}
	if n <= 1 {
		return sched.ScheduleFunc(func(uint64) int { return 0 })
	}
	half := n / 2
	return sched.ScheduleFunc(func(step uint64) int {
		phaseIndex := step / phaseLen
		if phaseIndex%2 == 0 {
			return int(step % uint64(half))
		}
		return half + int(step%uint64(n-half))
	})
}

// hash is a SplitMix64-style mix of (seed, x); it provides the deterministic
// pseudo-random choices behind the oblivious schedules.
func hash(seed, x uint64) uint64 {
	z := seed ^ (x+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// InputSpec describes the shape of the per-process inputs for an experiment.
type InputSpec struct {
	// Rounds is the number of Get/Free pairs per process.
	Rounds int
	// CallsAfterGet is the number of Call steps inserted between each Get
	// and its Free (the paper's adversary may insert arbitrary work there).
	CallsAfterGet int
	// CallsAfterFree is the number of Call steps inserted after each Free.
	CallsAfterFree int
	// CollectEvery inserts a Collect after every CollectEvery-th Free
	// (0 disables collects).
	CollectEvery int
}

// Validate reports the first problem with the specification.
func (s InputSpec) Validate() error {
	if s.Rounds < 0 || s.CallsAfterGet < 0 || s.CallsAfterFree < 0 || s.CollectEvery < 0 {
		return fmt.Errorf("adversary: negative field in input spec %+v", s)
	}
	return nil
}

// Build constructs the input for one process.
func (s InputSpec) Build() sched.Input {
	var in sched.Input
	for r := 0; r < s.Rounds; r++ {
		in = append(in, sched.Op{Kind: sched.OpGet})
		for i := 0; i < s.CallsAfterGet; i++ {
			in = append(in, sched.Op{Kind: sched.OpCall})
		}
		in = append(in, sched.Op{Kind: sched.OpFree})
		for i := 0; i < s.CallsAfterFree; i++ {
			in = append(in, sched.Op{Kind: sched.OpCall})
		}
		if s.CollectEvery > 0 && (r+1)%s.CollectEvery == 0 {
			in = append(in, sched.Op{Kind: sched.OpCollect})
		}
	}
	return in
}

// UniformInputs builds identical inputs for n processes.
func UniformInputs(n int, spec InputSpec) []sched.Input {
	inputs := make([]sched.Input, n)
	for i := range inputs {
		inputs[i] = spec.Build()
	}
	return inputs
}

// OneShotInputs builds the one-shot renaming workload: every process performs
// exactly one Get and nothing else. This is the regime analyzed by the
// prior work the paper extends (Broder–Karlin hashing and one-shot loose
// renaming).
func OneShotInputs(n int) []sched.Input {
	inputs := make([]sched.Input, n)
	for i := range inputs {
		inputs[i] = sched.Input{{Kind: sched.OpGet}}
	}
	return inputs
}

// JitteredInputs builds churn inputs whose Call padding varies pseudo-randomly
// per process and per round (bounded by maxCalls), so operations of different
// processes drift out of phase — the "arbitrary sequences of operations
// between a thread's register and the corresponding deregister" the analysis
// must tolerate (Lemma 2).
func JitteredInputs(n, rounds, maxCalls int, seed uint64) []sched.Input {
	src := rng.NewSplitMix64(seed)
	inputs := make([]sched.Input, n)
	for i := range inputs {
		var in sched.Input
		for r := 0; r < rounds; r++ {
			in = append(in, sched.Op{Kind: sched.OpGet})
			for c := 0; c < int(src.Uint64()%uint64(maxCalls+1)); c++ {
				in = append(in, sched.Op{Kind: sched.OpCall})
			}
			in = append(in, sched.Op{Kind: sched.OpFree})
			for c := 0; c < int(src.Uint64()%uint64(maxCalls+1)); c++ {
				in = append(in, sched.Op{Kind: sched.OpCall})
			}
		}
		inputs[i] = in
	}
	return inputs
}

// CollectorInputs builds inputs where the first collectors processes only
// perform Collect operations (rounds of them) and the remaining processes run
// the churn described by spec. This reproduces the memory-reclamation usage
// pattern: worker threads register and deregister while a scanner thread
// collects.
func CollectorInputs(n, collectors, collectRounds int, spec InputSpec) []sched.Input {
	inputs := make([]sched.Input, n)
	for i := 0; i < n; i++ {
		if i < collectors {
			var in sched.Input
			for r := 0; r < collectRounds; r++ {
				in = append(in, sched.Op{Kind: sched.OpCollect})
			}
			inputs[i] = in
			continue
		}
		inputs[i] = spec.Build()
	}
	return inputs
}

// IsCompact reports whether the combination of inputs and schedule is compact
// with bound B in the sense of Definition 3, checked empirically over a
// bounded horizon: every Get is followed by the matching Free within
// capacity^B scheduled steps of the same process. Inputs built by InputSpec
// with bounded Call padding are always compact; this helper documents and
// verifies the property for arbitrary inputs.
func IsCompact(inputs []sched.Input, capacity int, bound float64) bool {
	if bound <= 0 {
		return false
	}
	limit := math.Pow(float64(capacity), bound)
	for _, in := range inputs {
		stepsSinceGet := -1
		for _, op := range in {
			switch op.Kind {
			case sched.OpGet:
				stepsSinceGet = 0
			case sched.OpFree:
				stepsSinceGet = -1
			default:
				if stepsSinceGet >= 0 {
					stepsSinceGet++
					if float64(stepsSinceGet) > limit {
						return false
					}
				}
			}
		}
		if stepsSinceGet >= 0 && float64(stepsSinceGet) > limit {
			return false
		}
	}
	return true
}
