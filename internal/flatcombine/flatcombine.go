// Package flatcombine implements the flat-combining application the paper's
// introduction motivates: flat combining needs "to determine which threads
// have work to be performed", which this implementation does by allocating
// publication records through an activity array — threads register to obtain
// a compact record index and deregister when they leave, and the combiner
// Collects the registry to find the records it must serve (the [20] pattern).
//
// The combined structure here is a FIFO queue protected by a combiner lock:
// a thread publishes its operation in its record, then either acquires the
// combiner lock and serves everyone, or spins until its own record has been
// served.
package flatcombine

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/core"
)

// opKind identifies the pending operation in a publication record.
type opKind uint32

const (
	opNone opKind = iota
	opEnqueue
	opDequeue
)

// record is one publication record. Records are indexed by the activity-array
// name the owning thread holds, so the combiner can find every active record
// by Collecting the registry.
type record struct {
	// pending is the operation the owner has published and not yet seen
	// completed (an opKind value).
	pending atomic.Uint32
	// arg is the enqueue argument.
	arg atomic.Int64
	// result is the dequeue result.
	result atomic.Int64
	// ok reports whether a dequeue found an element (1) or the queue was
	// empty (0).
	ok atomic.Uint32
	// served counts how many of the owner's operations were applied by a
	// combiner other than the owner; used by tests and benchmarks to verify
	// combining actually happens.
	served atomic.Uint64
}

// Config parameterizes a flat-combining queue.
type Config struct {
	// MaxThreads is the maximum number of threads attached at the same time.
	MaxThreads int
	// Registry optionally supplies the activity array used to allocate
	// publication records. Nil selects a LevelArray of capacity MaxThreads.
	Registry activity.Array
	// Seed seeds the default LevelArray registry.
	Seed uint64
}

// Queue is a flat-combining FIFO queue of int64 values.
type Queue struct {
	registry activity.Array
	records  []record

	combinerLock atomic.Uint32

	// The sequential queue, only touched while holding the combiner lock.
	items []int64

	combines atomic.Uint64
}

// New builds a flat-combining queue.
func New(cfg Config) (*Queue, error) {
	if cfg.MaxThreads < 1 {
		return nil, fmt.Errorf("flatcombine: max threads %d must be at least 1", cfg.MaxThreads)
	}
	reg := cfg.Registry
	if reg == nil {
		la, err := core.New(core.Config{Capacity: cfg.MaxThreads, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("flatcombine: building registry: %w", err)
		}
		reg = la
	}
	return &Queue{
		registry: reg,
		records:  make([]record, reg.Size()),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Queue {
	q, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return q
}

// Registry returns the activity array used for publication records.
func (q *Queue) Registry() activity.Array { return q.registry }

// Combines returns the number of combining passes executed.
func (q *Queue) Combines() uint64 { return q.combines.Load() }

// Len returns the queue length. It is exact only when no operations are in
// flight.
func (q *Queue) Len() int {
	for !q.combinerLock.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
	n := len(q.items)
	q.combinerLock.Store(0)
	return n
}

// ErrDetached is returned by operations on a Handle that is not attached.
var ErrDetached = errors.New("flatcombine: handle not attached")

// Handle is a per-thread endpoint of the queue. It must be attached before
// use and detached when the thread leaves; attach/detach are the long-lived
// renaming operations whose cost the LevelArray minimizes. A Handle is not
// safe for concurrent use.
type Handle struct {
	queue    *Queue
	handle   activity.Handle
	recordID int
	attached bool
}

// Handle returns a new, not-yet-attached per-thread handle.
func (q *Queue) Handle() *Handle {
	return &Handle{queue: q, handle: q.registry.Handle()}
}

// Attach registers the thread and allocates its publication record.
func (h *Handle) Attach() error {
	if h.attached {
		return nil
	}
	name, err := h.handle.Get()
	if err != nil {
		return fmt.Errorf("flatcombine: attaching: %w", err)
	}
	h.recordID = name
	h.attached = true
	return nil
}

// Detach publishes nothing further and releases the publication record.
func (h *Handle) Detach() error {
	if !h.attached {
		return ErrDetached
	}
	rec := &h.queue.records[h.recordID]
	// The record must be idle before the index can be reused by another
	// thread.
	for rec.pending.Load() != uint32(opNone) {
		h.combineOrWait(rec)
	}
	if err := h.handle.Free(); err != nil {
		return fmt.Errorf("flatcombine: detaching: %w", err)
	}
	h.attached = false
	return nil
}

// Attached reports whether the handle currently holds a publication record.
func (h *Handle) Attached() bool { return h.attached }

// RegistrationStats returns the probe statistics of the underlying
// activity-array handle.
func (h *Handle) RegistrationStats() activity.ProbeStats { return h.handle.Stats() }

// Served returns how many of this handle's operations were applied by another
// thread's combining pass.
func (h *Handle) Served() uint64 {
	if !h.attached {
		return 0
	}
	return h.queue.records[h.recordID].served.Load()
}

// Enqueue appends value to the queue.
func (h *Handle) Enqueue(value int64) error {
	if !h.attached {
		return ErrDetached
	}
	rec := &h.queue.records[h.recordID]
	rec.arg.Store(value)
	rec.pending.Store(uint32(opEnqueue))
	h.combineOrWait(rec)
	return nil
}

// Dequeue removes and returns the value at the head of the queue. The second
// return value is false if the queue was empty.
func (h *Handle) Dequeue() (int64, bool, error) {
	if !h.attached {
		return 0, false, ErrDetached
	}
	rec := &h.queue.records[h.recordID]
	rec.pending.Store(uint32(opDequeue))
	h.combineOrWait(rec)
	return rec.result.Load(), rec.ok.Load() == 1, nil
}

// combineOrWait either becomes the combiner and serves every published
// record, or waits until this thread's record has been served.
func (h *Handle) combineOrWait(rec *record) {
	for rec.pending.Load() != uint32(opNone) {
		if h.queue.combinerLock.CompareAndSwap(0, 1) {
			h.queue.combine(h.recordID)
			h.queue.combinerLock.Store(0)
			continue
		}
		runtime.Gosched()
	}
}

// combine serves every pending publication record. The caller must hold the
// combiner lock. ownID is the record of the combining thread itself (its
// operations count as self-served).
func (q *Queue) combine(ownID int) {
	q.combines.Add(1)
	// The registry tells the combiner which records can possibly be active;
	// this is the Collect whose O(n) cost the paper's model accounts for.
	names := q.registry.Collect(nil)
	for _, name := range names {
		rec := &q.records[name]
		switch opKind(rec.pending.Load()) {
		case opEnqueue:
			q.items = append(q.items, rec.arg.Load())
			if name != ownID {
				rec.served.Add(1)
			}
			rec.pending.Store(uint32(opNone))
		case opDequeue:
			if len(q.items) == 0 {
				rec.ok.Store(0)
				rec.result.Store(0)
			} else {
				rec.ok.Store(1)
				rec.result.Store(q.items[0])
				q.items = q.items[1:]
			}
			if name != ownID {
				rec.served.Add(1)
			}
			rec.pending.Store(uint32(opNone))
		}
	}
}
