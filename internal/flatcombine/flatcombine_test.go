package flatcombine

import (
	"sync"
	"testing"

	"github.com/levelarray/levelarray/internal/registry"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero MaxThreads accepted")
	}
	q, err := New(Config{MaxThreads: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if q.Registry().Capacity() != 4 {
		t.Fatalf("registry capacity = %d, want 4", q.Registry().Capacity())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(Config{})
}

func TestCustomRegistry(t *testing.T) {
	reg := registry.MustNew(registry.LinearProbing, registry.Options{Capacity: 8})
	q := MustNew(Config{MaxThreads: 8, Registry: reg})
	if q.Registry() != reg {
		t.Fatal("custom registry not used")
	}
}

func TestHandleLifecycle(t *testing.T) {
	q := MustNew(Config{MaxThreads: 2})
	h := q.Handle()
	if h.Attached() {
		t.Fatal("fresh handle attached")
	}
	if err := h.Enqueue(1); err != ErrDetached {
		t.Fatalf("Enqueue detached = %v, want ErrDetached", err)
	}
	if _, _, err := h.Dequeue(); err != ErrDetached {
		t.Fatalf("Dequeue detached = %v, want ErrDetached", err)
	}
	if err := h.Detach(); err != ErrDetached {
		t.Fatalf("Detach before Attach = %v, want ErrDetached", err)
	}
	if err := h.Attach(); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if !h.Attached() {
		t.Fatal("handle not attached after Attach")
	}
	// Attach is idempotent.
	if err := h.Attach(); err != nil {
		t.Fatalf("second Attach: %v", err)
	}
	if err := h.Detach(); err != nil {
		t.Fatalf("Detach: %v", err)
	}
	if h.Attached() {
		t.Fatal("handle still attached after Detach")
	}
	// The registry slot was released.
	if got := q.Registry().Collect(nil); len(got) != 0 {
		t.Fatalf("registry still holds %v after Detach", got)
	}
}

func TestSequentialFIFO(t *testing.T) {
	q := MustNew(Config{MaxThreads: 2})
	h := q.Handle()
	if err := h.Attach(); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if _, ok, err := h.Dequeue(); err != nil || ok {
		t.Fatalf("Dequeue on empty = (%v, %v)", ok, err)
	}
	for i := int64(1); i <= 20; i++ {
		if err := h.Enqueue(i); err != nil {
			t.Fatalf("Enqueue(%d): %v", i, err)
		}
	}
	if q.Len() != 20 {
		t.Fatalf("Len = %d, want 20", q.Len())
	}
	for i := int64(1); i <= 20; i++ {
		v, ok, err := h.Dequeue()
		if err != nil || !ok {
			t.Fatalf("Dequeue: (%v, %v)", ok, err)
		}
		if v != i {
			t.Fatalf("Dequeue = %d, want %d (FIFO order)", v, i)
		}
	}
	if q.Combines() == 0 {
		t.Fatal("no combining passes recorded")
	}
}

func TestConcurrentEnqueueDequeue(t *testing.T) {
	const (
		workers   = 8
		perWorker = 400
	)
	q := MustNew(Config{MaxThreads: workers})

	// Phase 1: everyone enqueues.
	var wg sync.WaitGroup
	handles := make([]*Handle, workers)
	for w := 0; w < workers; w++ {
		w := w
		handles[w] = q.Handle()
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := handles[w]
			if err := h.Attach(); err != nil {
				t.Errorf("worker %d attach: %v", w, err)
				return
			}
			for i := 0; i < perWorker; i++ {
				if err := h.Enqueue(int64(w*perWorker + i)); err != nil {
					t.Errorf("worker %d enqueue: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if q.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", q.Len(), workers*perWorker)
	}

	// Phase 2: everyone dequeues; the union of everything dequeued must be
	// exactly the set of enqueued values, and per-producer FIFO order must be
	// preserved.
	results := make([][]int64, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := handles[w]
			for i := 0; i < perWorker; i++ {
				v, ok, err := h.Dequeue()
				if err != nil || !ok {
					t.Errorf("worker %d dequeue: (%v, %v)", w, ok, err)
					return
				}
				results[w] = append(results[w], v)
			}
			if err := h.Detach(); err != nil {
				t.Errorf("worker %d detach: %v", w, err)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	seen := make(map[int64]bool)
	total := 0
	for _, vs := range results {
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("value %d dequeued twice", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != workers*perWorker {
		t.Fatalf("dequeued %d values, want %d", total, workers*perWorker)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after draining", q.Len())
	}
}

// TestPerConsumerProducerOrder checks the FIFO property visible to a single
// consumer: the values it dequeues from any one producer appear in the order
// that producer enqueued them.
func TestPerConsumerProducerOrder(t *testing.T) {
	const (
		producers   = 4
		perProducer = 300
	)
	q := MustNew(Config{MaxThreads: producers + 1})

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.Handle()
			if err := h.Attach(); err != nil {
				t.Errorf("producer %d attach: %v", p, err)
				return
			}
			defer func() { _ = h.Detach() }()
			for i := 0; i < perProducer; i++ {
				if err := h.Enqueue(int64(p*perProducer + i)); err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
			}
		}()
	}

	consumer := q.Handle()
	if err := consumer.Attach(); err != nil {
		t.Fatalf("consumer attach: %v", err)
	}
	lastSeen := make([]int64, producers)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	received := 0
	for received < producers*perProducer {
		v, ok, err := consumer.Dequeue()
		if err != nil {
			t.Fatalf("consumer dequeue: %v", err)
		}
		if !ok {
			continue
		}
		producer := int(v) / perProducer
		if v <= lastSeen[producer] {
			t.Fatalf("producer %d values out of order: %d after %d", producer, v, lastSeen[producer])
		}
		lastSeen[producer] = v
		received++
	}
	wg.Wait()
	if err := consumer.Detach(); err != nil {
		t.Fatalf("consumer detach: %v", err)
	}
}

// TestCombiningHappens verifies that under contention some operations are
// served by another thread's combining pass — the defining behaviour of flat
// combining.
func TestCombiningHappens(t *testing.T) {
	const workers = 8
	q := MustNew(Config{MaxThreads: workers})
	var wg sync.WaitGroup
	servedByOthers := make([]uint64, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.Handle()
			if err := h.Attach(); err != nil {
				t.Errorf("attach: %v", err)
				return
			}
			for i := 0; i < 2000; i++ {
				if err := h.Enqueue(int64(i)); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
				if _, _, err := h.Dequeue(); err != nil {
					t.Errorf("dequeue: %v", err)
					return
				}
			}
			servedByOthers[w] = h.Served()
			if err := h.Detach(); err != nil {
				t.Errorf("detach: %v", err)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	var total uint64
	for _, s := range servedByOthers {
		total += s
	}
	if total == 0 {
		t.Skip("no cross-thread combining observed (possible on a single-CPU runner)")
	}
}
