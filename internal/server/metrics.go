package server

import (
	"errors"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/lease"
	"github.com/levelarray/levelarray/internal/metrics"
	"github.com/levelarray/levelarray/internal/shard"
	"github.com/levelarray/levelarray/internal/wal"
	"github.com/levelarray/levelarray/internal/wire"
)

// Metric family help text shared by the standalone server and the cluster
// node, so one catalog describes both facades.
const (
	helpOps     = "Lease operations attempted, by op (both protocols)."
	helpFence   = "Requests rejected by a fencing check, by error code (409/412/421)."
	helpUnavail = "Requests answered 503, by error code."
)

// Metrics is the instrumentation bundle shared by the HTTP handlers and the
// wire backend (and reused by the cluster node, which adds its own
// families on the same Registry). All instruments are lock-free; nil
// *Metrics disables instrumentation entirely.
type Metrics struct {
	Registry *metrics.Registry

	// Per-operation latency histograms (seconds, exponential buckets).
	AcquireLatency *metrics.Histogram
	RenewLatency   *metrics.Histogram
	ReleaseLatency *metrics.Histogram

	// Per-operation attempt counters (la_ops_total{op=...}).
	AcquireOps *metrics.Counter
	RenewOps   *metrics.Counter
	ReleaseOps *metrics.Counter
	BatchOps   *metrics.Counter

	mu      sync.Mutex
	fence   map[string]*metrics.Counter
	unavail map[string]*metrics.Counter
}

// NewMetrics registers the service families on reg and returns the bundle.
func NewMetrics(reg *metrics.Registry) *Metrics {
	m := &Metrics{
		Registry:       reg,
		AcquireLatency: reg.Histogram("la_acquire_latency_seconds", "Acquire latency.", metrics.LatencyBuckets()),
		RenewLatency:   reg.Histogram("la_renew_latency_seconds", "Renew latency.", metrics.LatencyBuckets()),
		ReleaseLatency: reg.Histogram("la_release_latency_seconds", "Release latency.", metrics.LatencyBuckets()),
		AcquireOps:     reg.Counter("la_ops_total", helpOps, metrics.L("op", "acquire")),
		RenewOps:       reg.Counter("la_ops_total", helpOps, metrics.L("op", "renew")),
		ReleaseOps:     reg.Counter("la_ops_total", helpOps, metrics.L("op", "release")),
		BatchOps:       reg.Counter("la_ops_total", helpOps, metrics.L("op", "batch")),
		fence:          make(map[string]*metrics.Counter),
		unavail:        make(map[string]*metrics.Counter),
	}
	// Pre-register the codes every deployment can emit, so the families are
	// present (at 0) from the first scrape.
	m.Fence(ErrCodeStaleToken)
	m.Fence(ErrCodeNotLeased)
	m.Unavailable(ErrCodeFull)
	m.Unavailable(ErrCodeClosed)
	RegisterBuildInfo(reg)
	return m
}

// Fence returns (registering on first use) the 4xx fencing counter for an
// error code.
func (m *Metrics) Fence(code string) *metrics.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.fence[code]
	if c == nil {
		c = m.Registry.Counter("la_fence_rejections_total", helpFence, metrics.L("code", code))
		m.fence[code] = c
	}
	return c
}

// FenceFunc adds a scrape-time fencing series backed by an existing counter
// (the cluster node's 412/421 atomics).
func (m *Metrics) FenceFunc(code string, fn func() uint64) {
	m.Registry.CounterFunc("la_fence_rejections_total", helpFence, fn, metrics.L("code", code))
}

// Unavailable returns (registering on first use) the 503 counter for an
// error code.
func (m *Metrics) Unavailable(code string) *metrics.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.unavail[code]
	if c == nil {
		c = m.Registry.Counter("la_unavailable_total", helpUnavail, metrics.L("code", code))
		m.unavail[code] = c
	}
	return c
}

// CountLeaseError bumps the failure counter a lease-layer error maps to,
// mirroring WriteLeaseError's status mapping. The cluster node uses it for
// its deferred replies; nil errors and nil receivers are no-ops.
func (m *Metrics) CountLeaseError(err error) {
	if m == nil {
		return
	}
	m.observeLeaseErr(err)
}

// observeLeaseErr is CountLeaseError without the nil-receiver guard, for the
// Observe* paths that already checked.
func (m *Metrics) observeLeaseErr(err error) {
	switch {
	case err == nil:
	case errors.Is(err, activity.ErrFull):
		m.Unavailable(ErrCodeFull).Inc()
	case errors.Is(err, lease.ErrStaleToken):
		m.Fence(ErrCodeStaleToken).Inc()
	case errors.Is(err, lease.ErrNotLeased):
		m.Fence(ErrCodeNotLeased).Inc()
	case errors.Is(err, lease.ErrClosed):
		m.Unavailable(ErrCodeClosed).Inc()
	}
}

// ObserveAcquire records one acquire attempt: latency, the attempt counter,
// and the failure class when err is non-nil. Safe on a nil receiver.
func (m *Metrics) ObserveAcquire(start time.Time, err error) {
	m.ObserveAcquireRID(start, err, "")
}

// ObserveAcquireRID is ObserveAcquire with the request ID offered as the
// latency bucket's exemplar, tying the histogram to the flight recorder.
func (m *Metrics) ObserveAcquireRID(start time.Time, err error, rid string) {
	if m == nil {
		return
	}
	m.AcquireLatency.ObserveEx(time.Since(start), rid)
	m.AcquireOps.Inc()
	m.observeLeaseErr(err)
}

// ObserveRenew records one renew attempt.
func (m *Metrics) ObserveRenew(start time.Time, err error) {
	m.ObserveRenewRID(start, err, "")
}

// ObserveRenewRID is ObserveRenew with a bucket-exemplar request ID.
func (m *Metrics) ObserveRenewRID(start time.Time, err error, rid string) {
	if m == nil {
		return
	}
	m.RenewLatency.ObserveEx(time.Since(start), rid)
	m.RenewOps.Inc()
	m.observeLeaseErr(err)
}

// ObserveRelease records one release attempt.
func (m *Metrics) ObserveRelease(start time.Time, err error) {
	m.ObserveReleaseRID(start, err, "")
}

// ObserveReleaseRID is ObserveRelease with a bucket-exemplar request ID.
func (m *Metrics) ObserveReleaseRID(start time.Time, err error, rid string) {
	if m == nil {
		return
	}
	m.ReleaseLatency.ObserveEx(time.Since(start), rid)
	m.ReleaseOps.Inc()
	m.observeLeaseErr(err)
}

// RegisterManager exposes a lease manager's gauges and counters: occupancy
// and load factor, plus the lifetime operation/expiration/orphan counters.
// The cluster node does not use this (its per-partition sampler families
// cover the same stats partition-labeled); the standalone server does.
func RegisterManager(reg *metrics.Registry, mgr *lease.Manager) {
	reg.GaugeFunc("la_leases_active", "Currently held leases.", func() float64 {
		return float64(mgr.Active())
	})
	reg.GaugeFunc("la_lease_capacity", "Lease namespace capacity.", func() float64 {
		return float64(mgr.Capacity())
	})
	reg.GaugeFunc("la_lease_load_factor", "Active leases over capacity.", mgr.LoadFactor)
	type cf struct {
		name, help string
		read       func(lease.Stats) uint64
	}
	for _, c := range []cf{
		{"la_lease_acquires_total", "Successful acquires.", func(s lease.Stats) uint64 { return s.Acquires }},
		{"la_lease_renews_total", "Successful renews.", func(s lease.Stats) uint64 { return s.Renews }},
		{"la_lease_releases_total", "Successful releases.", func(s lease.Stats) uint64 { return s.Releases }},
		{"la_lease_expirations_total", "Leases reaped by the expirer.", func(s lease.Stats) uint64 { return s.Expirations }},
		{"la_lease_failed_acquires_total", "Acquires failed with a full namespace.", func(s lease.Stats) uint64 { return s.FailedAcquires }},
		{"la_lease_renew_races_total", "Renews fenced by a stale token.", func(s lease.Stats) uint64 { return s.RenewRaces }},
		{"la_lease_release_races_total", "Releases fenced by a stale token.", func(s lease.Stats) uint64 { return s.ReleaseRaces }},
		{"la_lease_orphans_reclaimed_total", "Orphaned bits reclaimed by the cross-check sweep.", func(s lease.Stats) uint64 { return s.OrphansReclaimed }},
		{"la_lease_ticks_total", "Completed expirer passes.", func(s lease.Stats) uint64 { return s.Ticks }},
	} {
		read := c.read
		reg.CounterFunc(c.name, c.help, func() uint64 { return read(mgr.Stats()) })
	}
}

// RegisterShardStats exposes the sharded substrate's per-shard occupancy and
// steal counters when arr is sharded; other arrays register nothing.
func RegisterShardStats(reg *metrics.Registry, arr activity.Array) {
	sharded, ok := arr.(*shard.Sharded)
	if !ok {
		return
	}
	shardLabel := func(s shard.ShardStats) metrics.Label {
		return metrics.L("shard", strconv.Itoa(s.Shard))
	}
	reg.Sampler("la_shard_occupancy", "Occupied slots per shard.", metrics.TypeGauge, func(emit metrics.Emit) {
		for _, s := range sharded.ShardStats() {
			emit(float64(s.Occupancy), shardLabel(s))
		}
	})
	reg.Sampler("la_shard_steals_in_total", "Registrations stolen into each shard.", metrics.TypeCounter, func(emit metrics.Emit) {
		for _, s := range sharded.ShardStats() {
			emit(float64(s.StealsIn), shardLabel(s))
		}
	})
	reg.Sampler("la_shard_home_fulls_total", "Home-shard-full events per shard.", metrics.TypeCounter, func(emit metrics.Emit) {
		for _, s := range sharded.ShardStats() {
			emit(float64(s.HomeFulls), shardLabel(s))
		}
	})
}

// RegisterWireServer exposes a wire server's transport counters.
func RegisterWireServer(reg *metrics.Registry, ws *wire.Server) {
	reg.CounterFunc("la_wire_server_conns_total", "Wire connections accepted.", func() uint64 {
		return ws.Counters().ConnsAccepted
	})
	reg.CounterFunc("la_wire_server_frames_read_total", "Wire request frames read.", func() uint64 {
		return ws.Counters().FramesRead
	})
	reg.CounterFunc("la_wire_server_frames_written_total", "Wire response frames written.", func() uint64 {
		return ws.Counters().FramesWritten
	})
	reg.CounterFunc("la_wire_server_flushes_total", "Wire write flushes (frames/flush = write combining).", func() uint64 {
		return ws.Counters().Flushes
	})
	reg.CounterFunc("la_wire_server_decode_errors_total", "Malformed wire payloads answered 400.", func() uint64 {
		return ws.Counters().DecodeErrors
	})
}

// RegisterWAL exposes one partition store's durability counters — the
// la_wal_* families the service smoke test scrapes. The cluster node
// registers partition-labeled samplers instead.
func RegisterWAL(reg *metrics.Registry, st *wal.Store) {
	type cf struct {
		name, help string
		read       func(wal.Counters) uint64
	}
	for _, c := range []cf{
		{"la_wal_appends_total", "Lease records appended to the WAL.", func(c wal.Counters) uint64 { return c.Appends }},
		{"la_wal_syncs_total", "WAL fsyncs (appends/syncs = group-commit batching).", func(c wal.Counters) uint64 { return c.Syncs }},
		{"la_wal_bytes_total", "Bytes appended to the WAL.", func(c wal.Counters) uint64 { return c.Bytes }},
		{"la_wal_checkpoints_total", "Snapshot checkpoints completed.", func(c wal.Counters) uint64 { return c.Checkpoints }},
		{"la_wal_replay_records_total", "Records replayed from the log on boot.", func(c wal.Counters) uint64 { return c.ReplayRecords }},
		{"la_wal_torn_tails_total", "Torn final records truncated during replay.", func(c wal.Counters) uint64 { return c.TornTails }},
	} {
		read := c.read
		reg.CounterFunc(c.name, c.help, func() uint64 { return read(st.Counters()) })
	}
}

// RegisterRecovery exposes the boot replay duration, 0 until a recovery has
// run (la_recovery_seconds, asserted by the restart smoke test).
func RegisterRecovery(reg *metrics.Registry, seconds func() float64) {
	reg.GaugeFunc("la_recovery_seconds", "Duration of the boot WAL replay (snapshot + tail + re-adoption).", seconds)
}

// RegisterDebug mounts the stdlib pprof handlers on mux (the ones
// net/http/pprof would install on the default mux).
func RegisterDebug(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// MountMetrics serves reg at GET /metrics and the pprof routes on mux: the
// standard instrumentation surface of every laserve listener.
func MountMetrics(mux *http.ServeMux, reg *metrics.Registry) {
	mux.Handle("GET /metrics", reg.Handler())
	RegisterDebug(mux)
}
