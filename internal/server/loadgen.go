package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/levelarray/levelarray/internal/rng"
	"github.com/levelarray/levelarray/internal/wire"
)

// LeaseAPI is the protocol-neutral client surface a load run drives: the
// HTTP Client and the wire-protocol WireClient both implement it with
// identical status and TTL semantics, so the same closed-loop verification
// applies to either protocol.
type LeaseAPI interface {
	Acquire(ttlMillis int64) (LeaseResponse, int, time.Duration, error)
	Renew(name int, token uint64, ttlMillis int64) (LeaseResponse, int, error)
	Release(name int, token uint64) (int, error)
	Stats() (StatsResponse, error)
}

// BatchLeaseAPI extends LeaseAPI with the batch operations of the wire
// protocol; a load run with Batch > 0 requires it.
type BatchLeaseAPI interface {
	LeaseAPI
	AcquireBatch(n int, ttlMillis int64, dst []LeaseResponse) ([]LeaseResponse, int, time.Duration, error)
	RenewSession(refs []LeaseRef, ttlMillis int64, dst []RenewResult) ([]RenewResult, int, error)
	ReleaseBatch(refs []LeaseRef, dst []RenewResult) ([]RenewResult, int, error)
}

// wireCounted is implemented by APIs backed by a pooled wire client; the
// load report uses it for syscall-efficiency stats.
type wireCounted interface {
	WireCounters() wire.Counters
}

// Client is a minimal JSON client for the lease API, safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the service at base (e.g.
// "http://127.0.0.1:8080"). A nil hc selects a transport tuned for many
// concurrent loopback connections.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = 0
		tr.MaxIdleConnsPerHost = 1024
		hc = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	}
	return &Client{base: base, hc: hc}
}

// post sends one JSON request and decodes the response into out (on 2xx) or
// an ErrorResponse (otherwise). It returns the HTTP status and headers.
func (c *Client) post(path string, in, out any) (int, http.Header, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode/100 == 2 && out != nil {
		return resp.StatusCode, resp.Header, json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode, resp.Header, nil
}

// Acquire requests a lease; see AcquireRequest.TTLMillis for the encoding.
// On a 503 the returned duration carries the server's Retry-After pacing
// hint (zero otherwise, or when the server sent none).
func (c *Client) Acquire(ttlMillis int64) (LeaseResponse, int, time.Duration, error) {
	var l LeaseResponse
	status, header, err := c.post("/acquire", AcquireRequest{TTLMillis: ttlMillis}, &l)
	var hint time.Duration
	if status == http.StatusServiceUnavailable {
		hint = RetryAfterHint(header, 0)
	}
	return l, status, hint, err
}

// Renew extends a lease.
func (c *Client) Renew(name int, token uint64, ttlMillis int64) (LeaseResponse, int, error) {
	var l LeaseResponse
	status, _, err := c.post("/renew", RenewRequest{Name: name, Token: token, TTLMillis: ttlMillis}, &l)
	return l, status, err
}

// Release frees a lease.
func (c *Client) Release(name int, token uint64) (int, error) {
	status, _, err := c.post("/release", ReleaseRequest{Name: name, Token: token}, nil)
	return status, err
}

// Stats fetches the service statistics.
func (c *Client) Stats() (StatsResponse, error) {
	resp, err := c.hc.Get(c.base + "/stats")
	if err != nil {
		return StatsResponse{}, err
	}
	defer resp.Body.Close()
	var s StatsResponse
	return s, json.NewDecoder(resp.Body).Decode(&s)
}

// LoadConfig parameterizes one closed-loop load run against a lease service.
type LoadConfig struct {
	// BaseURL is the service address, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// API, when non-nil, overrides BaseURL with an explicit client — the way
	// a run is pointed at the wire protocol (or any future transport).
	API LeaseAPI
	// Batch, when > 0, switches the clients to batch rounds of that size:
	// one AcquireN per round, one bulk renew covering the whole set, then a
	// batch release of the non-crashed remainder. Requires an API
	// implementing BatchLeaseAPI. Bounded by wire.MaxBatch.
	Batch int
	// Clients is the number of concurrent closed-loop clients. Zero selects 16.
	Clients int
	// Acquires is the total number of acquire operations to perform across
	// all clients (renews and releases come on top). Zero selects 10000.
	Acquires int64
	// TTL is the lease TTL requested by every acquire. Zero selects 2s. It
	// should be comfortably longer than HoldMean so live leases never expire
	// mid-hold.
	TTL time.Duration
	// HoldMean is the mean of the exponential hold-time distribution between
	// acquire and release; zero holds for no time at all. Draws are capped
	// at 10x the mean.
	HoldMean time.Duration
	// CrashPercent is the percentage (0..100) of leases abandoned without
	// release, exercising server-side expiry.
	CrashPercent int
	// RenewPercent is the percentage (0..100) of held leases renewed once
	// mid-hold.
	RenewPercent int
	// Seed is the base seed for the per-client generators.
	Seed uint64
	// HTTPClient overrides the shared HTTP client; nil selects NewClient's
	// default loopback transport.
	HTTPClient *http.Client
	// ReclaimSlack pads the expiry-verification wait beyond the contractual
	// deadline + 2 expirer ticks, absorbing HTTP and scheduler latency.
	// Zero selects 500ms.
	ReclaimSlack time.Duration
}

func (c LoadConfig) withDefaults() (LoadConfig, error) {
	if c.BaseURL == "" && c.API == nil {
		return c, fmt.Errorf("loadgen: BaseURL or API must be set")
	}
	if c.Batch < 0 || c.Batch > wire.MaxBatch {
		return c, fmt.Errorf("loadgen: batch size %d outside 0..%d", c.Batch, wire.MaxBatch)
	}
	if c.Clients <= 0 {
		c.Clients = 16
	}
	if c.Acquires <= 0 {
		c.Acquires = 10000
	}
	if c.TTL <= 0 {
		c.TTL = 2 * time.Second
	}
	if c.CrashPercent < 0 || c.CrashPercent > 100 {
		return c, fmt.Errorf("loadgen: crash percent %d outside 0..100", c.CrashPercent)
	}
	if c.RenewPercent < 0 || c.RenewPercent > 100 {
		return c, fmt.Errorf("loadgen: renew percent %d outside 0..100", c.RenewPercent)
	}
	if c.ReclaimSlack <= 0 {
		c.ReclaimSlack = 500 * time.Millisecond
	}
	return c, nil
}

// LoadReport is the outcome of one load run: the traffic mix, the acquire
// latency distribution, and the verification ledger. A report with
// Violations() != nil means the service broke a lease-contract invariant.
type LoadReport struct {
	Acquires    uint64        `json:"acquires"`
	Renews      uint64        `json:"renews"`
	Releases    uint64        `json:"releases"`
	Crashes     uint64        `json:"crashes"`
	FullRetries uint64        `json:"full_retries"`
	Elapsed     time.Duration `json:"elapsed_ns"`

	AcquireP50 time.Duration `json:"acquire_p50_ns"`
	AcquireP90 time.Duration `json:"acquire_p90_ns"`
	AcquireP99 time.Duration `json:"acquire_p99_ns"`
	AcquireMax time.Duration `json:"acquire_max_ns"`

	// StaleRejected counts post-crash probes correctly bounced with 409:
	// the expected evidence that abandoned leases were reclaimed and fenced.
	StaleRejected uint64 `json:"stale_rejected"`

	// Violations.
	DuplicateNames  uint64 `json:"duplicate_names"`
	EarlyReissues   uint64 `json:"early_reissues"`
	LostReleases    uint64 `json:"lost_releases"`
	UnexpectedStale uint64 `json:"unexpected_stale"`
	StaleAccepted   uint64 `json:"stale_accepted"`
	Undrained       int64  `json:"undrained"`
	ExpiryMismatch  int64  `json:"expiry_mismatch"`
	// ShortRenewals counts bulk renewals that claimed success without
	// extending the deadline to at least request-time + TTL: a renew the
	// server acknowledged but did not actually honor.
	ShortRenewals uint64 `json:"short_renewals"`

	// Wire carries the syscall-efficiency counters of the run when the API
	// is backed by a pooled wire client (the deltas across the run): how
	// many operations each connection amortized and how many frames each
	// write syscall carried.
	Wire *WireEfficiency `json:"wire,omitempty"`

	FinalStats StatsResponse `json:"final_stats"`
}

// WireEfficiency is the syscall-amortization summary of a wire-backed run:
// the pooled client's own counters, as deltas over the run, so the report
// carries the client-side health that used to live only in exit logs.
type WireEfficiency struct {
	Dials      uint64 `json:"dials"`
	Ops        uint64 `json:"ops"`
	FramesSent uint64 `json:"frames_sent"`
	Flushes    uint64 `json:"flushes"`
	// Backoffs counts calls failed fast inside a redial-backoff window — a
	// nonzero value means the run was hitting a dead or flapping endpoint.
	Backoffs uint64 `json:"backoffs"`
}

// OpsPerConn returns completed operations per connection dialed.
func (w WireEfficiency) OpsPerConn() float64 {
	if w.Dials == 0 {
		return 0
	}
	return float64(w.Ops) / float64(w.Dials)
}

// FramesPerFlush returns request frames per write-side flush (syscall):
// the write-combining factor of the pipelined connection pool.
func (w WireEfficiency) FramesPerFlush() float64 {
	if w.Flushes == 0 {
		return 0
	}
	return float64(w.FramesSent) / float64(w.Flushes)
}

// Ops returns the total number of verified operations (acquires + renews +
// releases + post-crash stale probes).
func (r LoadReport) Ops() uint64 {
	return r.Acquires + r.Renews + r.Releases + r.StaleRejected
}

// Throughput returns verified operations per second.
func (r LoadReport) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops()) / r.Elapsed.Seconds()
}

// Violations lists every broken invariant, or nil when the run was clean.
func (r LoadReport) Violations() []string {
	var v []string
	if r.DuplicateNames > 0 {
		v = append(v, fmt.Sprintf("%d duplicate names among concurrently held leases", r.DuplicateNames))
	}
	if r.EarlyReissues > 0 {
		v = append(v, fmt.Sprintf("%d names reissued before their abandoned lease's TTL elapsed", r.EarlyReissues))
	}
	if r.LostReleases > 0 {
		v = append(v, fmt.Sprintf("%d releases of live leases rejected (lost release)", r.LostReleases))
	}
	if r.UnexpectedStale > 0 {
		v = append(v, fmt.Sprintf("%d live renews rejected as stale", r.UnexpectedStale))
	}
	if r.StaleAccepted > 0 {
		v = append(v, fmt.Sprintf("%d stale-token operations accepted after reclaim deadline", r.StaleAccepted))
	}
	if r.Undrained != 0 {
		v = append(v, fmt.Sprintf("%d leases still active after every deadline passed", r.Undrained))
	}
	if r.ExpiryMismatch != 0 {
		v = append(v, fmt.Sprintf("expirations diverge from crashes by %d", r.ExpiryMismatch))
	}
	if r.ShortRenewals > 0 {
		v = append(v, fmt.Sprintf("%d bulk renewals acknowledged without extending the deadline", r.ShortRenewals))
	}
	return v
}

// staleProbe is one abandoned lease queued for fencing verification.
type staleProbe struct {
	name  int
	token uint64
	// earliestReissue is the client-side lower bound on when the name may
	// be granted again: the acquire (or last renew) timestamp plus the TTL.
	earliestReissue time.Time
}

// ledger is the shared verification state of one load run.
type ledger struct {
	held      sync.Map // name -> struct{}: leases some client currently holds
	abandoned sync.Map // name -> time.Time: earliest legitimate reissue

	duplicates      atomic.Uint64
	earlyReissues   atomic.Uint64
	lostReleases    atomic.Uint64
	unexpectedStale atomic.Uint64
	staleAccepted   atomic.Uint64
	staleRejected   atomic.Uint64
	fullRetries     atomic.Uint64
	shortRenewals   atomic.Uint64

	acquires atomic.Uint64
	renews   atomic.Uint64
	releases atomic.Uint64
	crashes  atomic.Uint64

	lastDeadline atomic.Int64 // UnixNano of the latest abandoned deadline
}

// RunLoad drives one closed-loop load run and verifies the lease contract
// end to end: no duplicate names among concurrently held leases, no reissue
// of an abandoned name before its TTL elapsed, no lost releases, and every
// abandoned lease reclaimed (with its stale token fenced out) within two
// expirer ticks of its deadline.
func RunLoad(cfg LoadConfig) (LoadReport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return LoadReport{}, err
	}
	var client LeaseAPI = cfg.API
	if client == nil {
		client = NewClient(cfg.BaseURL, cfg.HTTPClient)
	}
	var batchClient BatchLeaseAPI
	if cfg.Batch > 0 {
		var ok bool
		if batchClient, ok = client.(BatchLeaseAPI); !ok {
			return LoadReport{}, fmt.Errorf("loadgen: batch mode needs a batch-capable API (wire protocol)")
		}
	}
	var wireBase wire.Counters
	counted, hasCounters := client.(wireCounted)
	if hasCounters {
		wireBase = counted.WireCounters()
	}

	// The expirer tick comes from the server so the reclaim checks agree
	// with its actual granularity.
	initial, err := client.Stats()
	if err != nil {
		return LoadReport{}, fmt.Errorf("loadgen: fetching initial stats: %w", err)
	}
	tick := time.Duration(initial.TickMillis) * time.Millisecond
	if tick <= 0 {
		tick = 100 * time.Millisecond
	}
	baselineExpirations := initial.Lease.Expirations

	led := &ledger{}
	var (
		remaining atomic.Int64
		wg        sync.WaitGroup
		probeWG   sync.WaitGroup
		probes    = make(chan staleProbe, 4096)
		latMu     sync.Mutex
		latencies []time.Duration
		errOnce   sync.Once
		runErr    error
	)
	remaining.Store(cfg.Acquires)

	// Fencing verifiers: once an abandoned lease's deadline plus two ticks
	// (plus slack) has passed, its token must be dead — a Renew and a
	// Release with it must both bounce with 409.
	for i := 0; i < 4; i++ {
		probeWG.Add(1)
		go func() {
			defer probeWG.Done()
			for p := range probes {
				wait := time.Until(p.earliestReissue.Add(2*tick + cfg.ReclaimSlack))
				if wait > 0 {
					time.Sleep(wait)
				}
				if _, status, err := client.Renew(p.name, p.token, 0); err == nil {
					if status/100 == 2 {
						led.staleAccepted.Add(1)
					} else {
						led.staleRejected.Add(1)
					}
				}
				if status, err := client.Release(p.name, p.token); err == nil {
					if status/100 == 2 {
						led.staleAccepted.Add(1)
					} else {
						led.staleRejected.Add(1)
					}
				}
			}
		}()
	}

	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			gen := rng.New(rng.KindSplitMix, cfg.Seed+uint64(id)*0x9E3779B97F4A7C15+1)
			if cfg.Batch > 0 {
				for {
					left := remaining.Add(-int64(cfg.Batch))
					n := cfg.Batch
					if left < 0 {
						// Partial (or empty) tail of the acquire budget.
						n += int(left)
						if n <= 0 {
							return
						}
					}
					if err := loadBatchRound(batchClient, n, cfg, led, gen, tick, probes, &latMu, &latencies); err != nil {
						errOnce.Do(func() { runErr = err })
						remaining.Store(0)
						return
					}
					if left < 0 {
						return
					}
				}
			}
			for remaining.Add(-1) >= 0 {
				if err := loadRound(client, cfg, led, gen, tick, probes, &latMu, &latencies); err != nil {
					errOnce.Do(func() { runErr = err })
					remaining.Store(0)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(probes)
	probeWG.Wait()
	if runErr != nil {
		return LoadReport{}, fmt.Errorf("loadgen: %w", runErr)
	}

	report := LoadReport{
		Acquires:        led.acquires.Load(),
		Renews:          led.renews.Load(),
		Releases:        led.releases.Load(),
		Crashes:         led.crashes.Load(),
		FullRetries:     led.fullRetries.Load(),
		Elapsed:         elapsed,
		StaleRejected:   led.staleRejected.Load(),
		DuplicateNames:  led.duplicates.Load(),
		EarlyReissues:   led.earlyReissues.Load(),
		LostReleases:    led.lostReleases.Load(),
		UnexpectedStale: led.unexpectedStale.Load(),
		StaleAccepted:   led.staleAccepted.Load(),
		ShortRenewals:   led.shortRenewals.Load(),
	}
	if hasCounters {
		after := counted.WireCounters()
		report.Wire = &WireEfficiency{
			Dials:      after.Dials - wireBase.Dials,
			Ops:        after.Ops - wireBase.Ops,
			FramesSent: after.FramesSent - wireBase.FramesSent,
			Flushes:    after.Flushes - wireBase.Flushes,
			Backoffs:   after.Backoffs - wireBase.Backoffs,
		}
	}

	// Drain check: after the latest abandoned deadline plus two ticks plus
	// slack, no lease may remain active and every crash must have expired.
	if last := led.lastDeadline.Load(); last != 0 {
		if wait := time.Until(time.Unix(0, last).Add(2*tick + cfg.ReclaimSlack)); wait > 0 {
			time.Sleep(wait)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		final, err := client.Stats()
		if err != nil {
			return report, fmt.Errorf("loadgen: fetching final stats: %w", err)
		}
		report.FinalStats = final
		report.Undrained = final.Lease.Active
		report.ExpiryMismatch = int64(final.Lease.Expirations-baselineExpirations) - int64(report.Crashes)
		if report.Undrained == 0 && report.ExpiryMismatch == 0 {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	sortDurations(latencies)
	report.AcquireP50 = percentile(latencies, 0.50)
	report.AcquireP90 = percentile(latencies, 0.90)
	report.AcquireP99 = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		report.AcquireMax = latencies[n-1]
	}
	return report, nil
}

// loadRound is one closed-loop iteration: acquire (with full-namespace
// backoff), verify uniqueness, hold, maybe renew, then release or crash.
func loadRound(client LeaseAPI, cfg LoadConfig, led *ledger, gen rng.Source, tick time.Duration, probes chan<- staleProbe, latMu *sync.Mutex, latencies *[]time.Duration) error {
	ttlMillis := cfg.TTL.Milliseconds()
	var (
		l      LeaseResponse
		status int
		t0     time.Time
	)
	for {
		t0 = time.Now()
		var err error
		var hint time.Duration
		l, status, hint, err = client.Acquire(ttlMillis)
		lat := time.Since(t0)
		if err != nil {
			return err
		}
		if status/100 == 2 {
			latMu.Lock()
			*latencies = append(*latencies, lat)
			latMu.Unlock()
			break
		}
		if status == http.StatusServiceUnavailable {
			// Namespace exhausted by not-yet-expired abandoned leases: back
			// off for the server's Retry-After pacing (one expirer tick as
			// the fallback) so saturation runs measure service time, not
			// spin. Expected at high crash fractions.
			led.fullRetries.Add(1)
			if hint <= 0 {
				hint = tick
			}
			time.Sleep(hint)
			continue
		}
		return fmt.Errorf("loadgen: acquire returned status %d", status)
	}
	led.acquires.Add(1)

	// Uniqueness among concurrently held leases, and no early reissue of an
	// abandoned name: the server may only grant a name again once its
	// previous lease was released or its TTL (measured from before our
	// request was sent) fully elapsed.
	if _, loaded := led.held.LoadOrStore(l.Name, struct{}{}); loaded {
		led.duplicates.Add(1)
	}
	if earliest, ok := led.abandoned.LoadAndDelete(l.Name); ok {
		if time.Now().Before(earliest.(time.Time)) {
			led.earlyReissues.Add(1)
		}
	}

	hold(cfg, gen)
	extendedAt := t0
	if cfg.RenewPercent > 0 && gen.Intn(100) < cfg.RenewPercent {
		extendedAt = time.Now()
		_, status, err := client.Renew(l.Name, l.Token, ttlMillis)
		if err != nil {
			return err
		}
		if status/100 == 2 {
			led.renews.Add(1)
		} else {
			led.unexpectedStale.Add(1)
		}
		hold(cfg, gen)
	}

	if cfg.CrashPercent > 0 && gen.Intn(100) < cfg.CrashPercent {
		// Crash: walk away. The name stays leased until its deadline; record
		// the earliest instant the server may legitimately reissue it, and
		// queue the dead token for fencing verification.
		led.crashes.Add(1)
		earliest := extendedAt.Add(cfg.TTL)
		led.held.Delete(l.Name)
		led.abandoned.Store(l.Name, earliest)
		for {
			last := led.lastDeadline.Load()
			if earliest.UnixNano() <= last || led.lastDeadline.CompareAndSwap(last, earliest.UnixNano()) {
				break
			}
		}
		select {
		case probes <- staleProbe{name: l.Name, token: l.Token, earliestReissue: earliest}:
		default:
			// Verifier backlog full; the drain check still covers this lease.
		}
		return nil
	}

	led.held.Delete(l.Name)
	status, err := client.Release(l.Name, l.Token)
	if err != nil {
		return err
	}
	if status/100 != 2 {
		led.lostReleases.Add(1)
		return nil
	}
	led.releases.Add(1)
	return nil
}

// loadBatchRound is one closed-loop batch iteration: one AcquireN for n
// leases (with full-namespace backoff), distinctness verification across the
// batch and against every concurrently held lease, one bulk renew covering
// the whole set (verifying each acknowledged renewal actually extended its
// deadline), then a per-lease crash draw — crashed leases are abandoned to
// expiry with their tokens queued for fencing probes, the remainder is freed
// in one batch release.
func loadBatchRound(client BatchLeaseAPI, n int, cfg LoadConfig, led *ledger, gen rng.Source, tick time.Duration, probes chan<- staleProbe, latMu *sync.Mutex, latencies *[]time.Duration) error {
	ttlMillis := cfg.TTL.Milliseconds()
	var (
		batch []LeaseResponse
		t0    time.Time
	)
	for {
		t0 = time.Now()
		var err error
		var hint time.Duration
		var status int
		batch, status, hint, err = client.AcquireBatch(n, ttlMillis, batch[:0])
		lat := time.Since(t0)
		if err != nil {
			return err
		}
		if status/100 == 2 {
			latMu.Lock()
			*latencies = append(*latencies, lat)
			latMu.Unlock()
			break
		}
		if status == http.StatusServiceUnavailable {
			led.fullRetries.Add(1)
			if hint <= 0 {
				hint = tick
			}
			time.Sleep(hint)
			continue
		}
		return fmt.Errorf("loadgen: batch acquire returned status %d", status)
	}
	led.acquires.Add(uint64(len(batch)))

	// Distinctness within the batch is checked on top of the shared held
	// map: an AcquireN granting one name twice would otherwise look like a
	// single-grant round to per-round bookkeeping.
	seen := make(map[int]struct{}, len(batch))
	for _, l := range batch {
		if _, dup := seen[l.Name]; dup {
			led.duplicates.Add(1)
		}
		seen[l.Name] = struct{}{}
		if _, loaded := led.held.LoadOrStore(l.Name, struct{}{}); loaded {
			led.duplicates.Add(1)
		}
		if earliest, ok := led.abandoned.LoadAndDelete(l.Name); ok {
			if time.Now().Before(earliest.(time.Time)) {
				led.earlyReissues.Add(1)
			}
		}
	}

	hold(cfg, gen)
	extendedAt := t0
	if cfg.RenewPercent > 0 && gen.Intn(100) < cfg.RenewPercent {
		refs := make([]LeaseRef, 0, len(batch))
		for _, l := range batch {
			refs = append(refs, LeaseRef{Name: l.Name, Token: l.Token})
		}
		renewedAt := time.Now()
		results, status, err := client.RenewSession(refs, ttlMillis, nil)
		if err != nil {
			return err
		}
		if status/100 != 2 || len(results) != len(refs) {
			led.unexpectedStale.Add(uint64(len(refs)))
		} else {
			extendedAt = renewedAt
			// Every acknowledged renewal must have pushed its deadline to at
			// least send-time + TTL (1ms slack for millisecond truncation) —
			// "extended every deadline it claims to".
			floor := renewedAt.Add(cfg.TTL).UnixMilli() - 1
			for i, res := range results {
				if res.Status/100 != 2 {
					led.unexpectedStale.Add(1)
					continue
				}
				led.renews.Add(1)
				if res.DeadlineUnixMillis < floor || res.DeadlineUnixMillis < batch[i].DeadlineUnixMillis {
					led.shortRenewals.Add(1)
				}
			}
		}
		hold(cfg, gen)
	}

	// Per-lease crash draw, exactly as the single-op rounds, so expiry and
	// fencing are exercised under batch traffic too.
	release := make([]LeaseRef, 0, len(batch))
	for _, l := range batch {
		if cfg.CrashPercent > 0 && gen.Intn(100) < cfg.CrashPercent {
			led.crashes.Add(1)
			earliest := extendedAt.Add(cfg.TTL)
			led.held.Delete(l.Name)
			led.abandoned.Store(l.Name, earliest)
			for {
				last := led.lastDeadline.Load()
				if earliest.UnixNano() <= last || led.lastDeadline.CompareAndSwap(last, earliest.UnixNano()) {
					break
				}
			}
			select {
			case probes <- staleProbe{name: l.Name, token: l.Token, earliestReissue: earliest}:
			default:
			}
			continue
		}
		release = append(release, LeaseRef{Name: l.Name, Token: l.Token})
	}
	if len(release) == 0 {
		return nil
	}
	for _, ref := range release {
		led.held.Delete(ref.Name)
	}
	results, status, err := client.ReleaseBatch(release, nil)
	if err != nil {
		return err
	}
	if status/100 != 2 || len(results) != len(release) {
		led.lostReleases.Add(uint64(len(release)))
		return nil
	}
	for _, res := range results {
		if res.Status/100 == 2 {
			led.releases.Add(1)
		} else {
			led.lostReleases.Add(1)
		}
	}
	return nil
}

// hold sleeps for an exponential draw with mean cfg.HoldMean, capped at 10x.
func hold(cfg LoadConfig, gen rng.Source) {
	if cfg.HoldMean <= 0 {
		return
	}
	u := float64(gen.Uint64()>>11) / float64(1<<53)
	d := time.Duration(-float64(cfg.HoldMean) * math.Log(1-u))
	if d > 10*cfg.HoldMean {
		d = 10 * cfg.HoldMean
	}
	time.Sleep(d)
}

func sortDurations(d []time.Duration) {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
}

// percentile returns the q-quantile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
