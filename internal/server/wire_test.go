package server

import (
	"net"
	"testing"
	"time"

	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/lease"
	"github.com/levelarray/levelarray/internal/wire"
)

// newWireService starts a wire server over a fresh manager and returns a
// connected typed client.
func newWireService(t *testing.T, capacity int, tick time.Duration) (*WireClient, *lease.Manager) {
	t.Helper()
	arr := core.MustNew(core.Config{Capacity: capacity})
	mgr := lease.MustNewManager(arr, lease.Config{TickInterval: tick})
	mgr.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := wire.NewServer(NewWireBackend(mgr, Config{DefaultTTL: time.Second}))
	go func() { _ = srv.Serve(ln) }()
	cl := wire.NewClient(ln.Addr().String(), nil)
	t.Cleanup(func() {
		cl.Close()
		_ = srv.Close()
		mgr.Close()
	})
	return NewWireClient(cl), mgr
}

func TestWireAcquireRenewRelease(t *testing.T) {
	c, mgr := newWireService(t, 8, 10*time.Millisecond)

	l, status, _, err := c.Acquire(5000)
	if err != nil || status != 200 {
		t.Fatalf("acquire: status %d err %v", status, err)
	}
	if l.Token == 0 {
		t.Fatal("zero token")
	}
	if mgr.Active() != 1 {
		t.Fatalf("Active = %d, want 1", mgr.Active())
	}

	r, status, err := c.Renew(l.Name, l.Token, 5000)
	if err != nil || status != 200 {
		t.Fatalf("renew: status %d err %v", status, err)
	}
	if r.DeadlineUnixMillis < l.DeadlineUnixMillis {
		t.Fatalf("renew moved the deadline backwards: %d -> %d", l.DeadlineUnixMillis, r.DeadlineUnixMillis)
	}

	// Fencing semantics as status codes.
	if _, status, err := c.Renew(l.Name, l.Token+1, 0); err != nil || status != 409 {
		t.Fatalf("stale-token renew: status %d err %v, want 409", status, err)
	}
	if status, err := c.Release(l.Name, l.Token); err != nil || status != 200 {
		t.Fatalf("release: status %d err %v", status, err)
	}
	if status, err := c.Release(l.Name, l.Token); err != nil || status != 409 {
		t.Fatalf("double release: status %d err %v, want 409", status, err)
	}

	s, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if s.Lease.Acquires < 1 || s.Lease.Active != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestWireBatchOps(t *testing.T) {
	c, mgr := newWireService(t, 64, 10*time.Millisecond)

	grants, status, _, err := c.AcquireBatch(32, 60_000, nil)
	if err != nil || status != 200 {
		t.Fatalf("AcquireBatch: status %d err %v", status, err)
	}
	if len(grants) != 32 {
		t.Fatalf("granted %d, want 32", len(grants))
	}
	seen := map[int]bool{}
	for _, g := range grants {
		if seen[g.Name] {
			t.Fatalf("name %d granted twice", g.Name)
		}
		seen[g.Name] = true
	}
	if mgr.Active() != 32 {
		t.Fatalf("Active = %d, want 32", mgr.Active())
	}

	refs := make([]LeaseRef, len(grants))
	for i, g := range grants {
		refs[i] = LeaseRef{Name: g.Name, Token: g.Token}
	}
	// Corrupt one token: the batch must report it individually, not fail.
	refs[7].Token++

	renewedAt := time.Now()
	results, status, err := c.RenewSession(refs, 60_000, nil)
	if err != nil || status != 200 {
		t.Fatalf("RenewSession: status %d err %v", status, err)
	}
	if len(results) != len(refs) {
		t.Fatalf("results %d, want %d", len(results), len(refs))
	}
	for i, res := range results {
		if i == 7 {
			if res.Status != 409 || res.Code != "stale_token" {
				t.Fatalf("corrupted ref: %+v, want 409 stale_token", res)
			}
			continue
		}
		if res.Status != 200 {
			t.Fatalf("result %d: %+v", i, res)
		}
		if res.DeadlineUnixMillis < renewedAt.Add(59*time.Second).UnixMilli() {
			t.Fatalf("result %d deadline %d not extended by ~60s", i, res.DeadlineUnixMillis)
		}
	}

	refs[7].Token-- // restore
	rel, status, err := c.ReleaseBatch(refs, nil)
	if err != nil || status != 200 {
		t.Fatalf("ReleaseBatch: status %d err %v", status, err)
	}
	for i, res := range rel {
		if res.Status != 200 {
			t.Fatalf("release %d: %+v", i, res)
		}
	}
	if mgr.Active() != 0 {
		t.Fatalf("Active after batch release = %d, want 0", mgr.Active())
	}
}

func TestWireLoadRun(t *testing.T) {
	if testing.Short() {
		t.Skip("load run")
	}
	c, _ := newWireService(t, 256, 20*time.Millisecond)
	report, err := RunLoad(LoadConfig{
		API:          c,
		Clients:      8,
		Acquires:     3000,
		TTL:          2 * time.Second,
		HoldMean:     200 * time.Microsecond,
		CrashPercent: 20,
		RenewPercent: 30,
		Seed:         42,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if v := report.Violations(); v != nil {
		t.Fatalf("violations over wire: %v", v)
	}
	if report.Wire == nil {
		t.Fatal("report.Wire must be populated for a wire-backed run")
	}
	if report.Wire.Ops == 0 || report.Wire.FramesSent == 0 {
		t.Fatalf("wire efficiency empty: %+v", report.Wire)
	}
	if report.Wire.OpsPerConn() < 100 {
		t.Fatalf("ops per connection %.1f: persistent connections must amortize dials", report.Wire.OpsPerConn())
	}
}

func TestWireBatchLoadRun(t *testing.T) {
	if testing.Short() {
		t.Skip("load run")
	}
	c, _ := newWireService(t, 1024, 20*time.Millisecond)
	report, err := RunLoad(LoadConfig{
		API:          c,
		Batch:        32,
		Clients:      4,
		Acquires:     4000,
		TTL:          2 * time.Second,
		CrashPercent: 10,
		RenewPercent: 50,
		Seed:         7,
	})
	if err != nil {
		t.Fatalf("RunLoad batch: %v", err)
	}
	if v := report.Violations(); v != nil {
		t.Fatalf("violations in batch mode: %v", v)
	}
	if report.Acquires == 0 || report.Renews == 0 {
		t.Fatalf("batch run did too little: %+v", report)
	}
}
