package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/lease"
	"github.com/levelarray/levelarray/internal/shard"
	"github.com/levelarray/levelarray/internal/wire"
)

// WireBackend serves the binary wire protocol over one lease.Manager: the
// standalone-node counterpart of Server, sharing its TTL encoding (0 =
// default, negative = infinite) and error vocabulary, with the HTTP statuses
// carried in the frame header. Build it with NewWireBackend and hand it to
// wire.NewServer.
type WireBackend struct {
	mgr     *lease.Manager
	cfg     Config
	started time.Time
}

// NewWireBackend builds a wire backend over mgr with the same defaults as New.
func NewWireBackend(mgr *lease.Manager, cfg Config) *WireBackend {
	if cfg.DefaultTTL <= 0 {
		cfg.DefaultTTL = 10 * time.Second
	}
	return &WireBackend{mgr: mgr, cfg: cfg, started: time.Now()}
}

// ttlOf maps the wire TTL encoding to the lease layer's, as Server.ttlOf.
func (b *WireBackend) ttlOf(millis int64) time.Duration {
	switch {
	case millis == 0:
		return b.cfg.DefaultTTL
	case millis < 0:
		return 0
	default:
		return time.Duration(millis) * time.Millisecond
	}
}

// wireScratch is the per-call batch workspace, pooled so the batch opcodes
// stay allocation-free at steady state.
type wireScratch struct {
	leases   []lease.Lease
	refs     []lease.Ref
	outcomes []lease.RenewOutcome
}

var wireScratchPool = sync.Pool{New: func() any { return &wireScratch{} }}

// WireLeaseError maps a lease-layer error onto a frame's status and code:
// the binary counterpart of WriteLeaseError, so both protocols express one
// error vocabulary.
func WireLeaseError(err error) (wire.Status, wire.Code) {
	switch {
	case errors.Is(err, activity.ErrFull):
		return wire.StatusUnavailable, wire.CodeFull
	case errors.Is(err, lease.ErrStaleToken):
		return wire.StatusConflict, wire.CodeStaleToken
	case errors.Is(err, lease.ErrNotLeased):
		return wire.StatusConflict, wire.CodeNotLeased
	case errors.Is(err, lease.ErrClosed):
		return wire.StatusUnavailable, wire.CodeClosed
	case errors.Is(err, lease.ErrTTLTooLong):
		return wire.StatusBadRequest, wire.CodeTTLTooLong
	default:
		return wire.StatusInternal, wire.CodeInternal
	}
}

// wireGrant converts one granted lease to its frame shape.
func wireGrant(l lease.Lease) wire.Grant {
	g := wire.Grant{Name: int64(l.Name), Token: l.Token}
	if !l.Deadline.IsZero() {
		g.DeadlineUnixMilli = l.Deadline.UnixMilli()
	}
	return g
}

// respondLeaseError fills resp for err, attaching the expirer-tick retry
// pacing to a saturated namespace exactly as the HTTP 503 does.
func (b *WireBackend) respondLeaseError(resp *wire.Response, err error) {
	resp.Status, resp.Code = WireLeaseError(err)
	if resp.Status == wire.StatusUnavailable {
		wait := b.mgr.TickInterval()
		if wait <= 0 {
			wait = time.Millisecond
		}
		resp.RetryAfterMillis = wait.Milliseconds()
		if resp.RetryAfterMillis < 1 {
			resp.RetryAfterMillis = 1
		}
	}
}

// ServeWire implements wire.Backend over the manager.
func (b *WireBackend) ServeWire(req *wire.Request, resp *wire.Response) {
	switch req.Op {
	case wire.OpPing:
		// Status OK, empty payload.

	case wire.OpAcquire:
		start := time.Now()
		l, err := b.mgr.AcquireSpan(b.ttlOf(req.TTLMillis), req.Span)
		b.cfg.Metrics.ObserveAcquireRID(start, err, req.Span.RID())
		if err != nil {
			b.respondLeaseError(resp, err)
			return
		}
		resp.Grants = append(resp.Grants, wireGrant(l))

	case wire.OpRenew:
		ref := req.Items[0]
		start := time.Now()
		l, err := b.mgr.RenewSpan(int(ref.Name), ref.Token, b.ttlOf(req.TTLMillis), req.Span)
		b.cfg.Metrics.ObserveRenewRID(start, err, req.Span.RID())
		if err != nil {
			b.respondLeaseError(resp, err)
			return
		}
		resp.Grants = append(resp.Grants, wireGrant(l))

	case wire.OpRelease:
		ref := req.Items[0]
		start := time.Now()
		err := b.mgr.ReleaseSpan(int(ref.Name), ref.Token, req.Span)
		b.cfg.Metrics.ObserveReleaseRID(start, err, req.Span.RID())
		if err != nil {
			b.respondLeaseError(resp, err)
			return
		}

	case wire.OpAcquireN:
		if b.cfg.Metrics != nil {
			b.cfg.Metrics.BatchOps.Inc()
		}
		sc := wireScratchPool.Get().(*wireScratch)
		leases, err := b.mgr.AcquireN(int(req.N), b.ttlOf(req.TTLMillis), sc.leases[:0])
		sc.leases = leases
		if len(leases) == 0 {
			if err == nil {
				err = activity.ErrFull
			}
			b.respondLeaseError(resp, err)
			wireScratchPool.Put(sc)
			return
		}
		for _, l := range leases {
			resp.Grants = append(resp.Grants, wireGrant(l))
		}
		wireScratchPool.Put(sc)

	case wire.OpReleaseN:
		if b.cfg.Metrics != nil {
			b.cfg.Metrics.BatchOps.Inc()
		}
		for _, ref := range req.Items {
			it := wire.ItemResult{Status: wire.StatusOK}
			if err := b.mgr.Release(int(ref.Name), ref.Token); err != nil {
				it.Status, it.Code = WireLeaseError(err)
			}
			resp.Items = append(resp.Items, it)
		}

	case wire.OpRenewSession:
		if b.cfg.Metrics != nil {
			b.cfg.Metrics.BatchOps.Inc()
		}
		sc := wireScratchPool.Get().(*wireScratch)
		sc.refs = sc.refs[:0]
		for _, ref := range req.Items {
			sc.refs = append(sc.refs, lease.Ref{Name: int(ref.Name), Token: ref.Token})
		}
		outcomes, err := b.mgr.RenewAll(sc.refs, b.ttlOf(req.TTLMillis), sc.outcomes[:0])
		sc.outcomes = outcomes
		if err != nil {
			b.respondLeaseError(resp, err)
			wireScratchPool.Put(sc)
			return
		}
		for _, out := range outcomes {
			it := wire.ItemResult{Status: wire.StatusOK}
			if out.Err != nil {
				it.Status, it.Code = WireLeaseError(out.Err)
			} else if !out.Deadline.IsZero() {
				it.DeadlineUnixMilli = out.Deadline.UnixMilli()
			}
			resp.Items = append(resp.Items, it)
		}
		wireScratchPool.Put(sc)

	case wire.OpCollect:
		names := b.mgr.Collect(nil)
		if names == nil {
			names = []int{}
		}
		b.blob(resp, CollectResponse{Count: len(names), Names: names})

	case wire.OpStats:
		b.blob(resp, b.statsResponse())

	case wire.OpLeases:
		start, limit := int(req.Start), int(req.Limit)
		if start < 0 {
			resp.Status, resp.Code = wire.StatusBadRequest, wire.CodeBadRequest
			return
		}
		if limit <= 0 {
			limit = DefaultLeasesPageLimit
		}
		if limit > MaxLeasesPageLimit {
			limit = MaxLeasesPageLimit
		}
		page, next := b.mgr.Sessions(start, limit)
		lr := LeasesResponse{Sessions: make([]SessionJSON, 0, len(page)), Next: next, Active: b.mgr.Active()}
		for _, sess := range page {
			j := SessionJSON{Name: sess.Name, Token: sess.Token}
			if !sess.Deadline.IsZero() {
				j.DeadlineUnixMillis = sess.Deadline.UnixMilli()
			}
			lr.Sessions = append(lr.Sessions, j)
		}
		b.blob(resp, lr)

	case wire.OpMembers:
		// A standalone node has no membership table.
		resp.Status, resp.Code = wire.StatusBadRequest, wire.CodeBadRequest

	default:
		resp.Status, resp.Code = wire.StatusBadRequest, wire.CodeBadRequest
	}
}

// statsResponse mirrors the HTTP /stats body.
func (b *WireBackend) statsResponse() StatsResponse {
	resp := StatsResponse{
		Lease:        b.mgr.Stats(),
		Capacity:     b.mgr.Capacity(),
		Size:         b.mgr.Size(),
		TickMillis:   b.mgr.TickInterval().Milliseconds(),
		UptimeMillis: time.Since(b.started).Milliseconds(),
	}
	if sharded, ok := b.mgr.Array().(*shard.Sharded); ok {
		resp.Shards = sharded.ShardStats()
	}
	return resp
}

// blob JSON-encodes body into the response payload. The read-side debug
// opcodes are the one place the binary protocol carries JSON — they exist so
// debug tooling can ride the same connection, not for speed.
func (b *WireBackend) blob(resp *wire.Response, body any) {
	buf, err := json.Marshal(body)
	if err != nil {
		resp.Status, resp.Code = wire.StatusInternal, wire.CodeInternal
		return
	}
	resp.Blob = append(resp.Blob[:0], buf...)
}

// LeaseRef addresses one held lease in a client-side batch call.
type LeaseRef struct {
	Name  int
	Token uint64
}

// RenewResult is the per-lease outcome of a bulk renew (and, without the
// deadline, of a batch release): the HTTP-valued status, the error code
// string on failure, and the renewed deadline on success.
type RenewResult struct {
	Status             int
	Code               string
	DeadlineUnixMillis int64
}

// WireClient adapts a wire.Client to the lease-API surface of the HTTP
// Client — identical signatures, statuses and TTL encoding — plus the batch
// operations only the binary protocol offers. Safe for concurrent use.
type WireClient struct {
	c *wire.Client
}

// NewWireClient wraps c. The caller keeps ownership (and Close duty) of c.
func NewWireClient(c *wire.Client) *WireClient { return &WireClient{c: c} }

// Wire exposes the underlying wire client (for counters and Close).
func (w *WireClient) Wire() *wire.Client { return w.c }

// wireCall is a pooled request/response pair so concurrent callers do not
// allocate per operation.
type wireCall struct {
	req  wire.Request
	resp wire.Response
}

var wireCallPool = sync.Pool{New: func() any { return &wireCall{} }}

// begin readies a pooled call for op.
func begin(op wire.Opcode) *wireCall {
	ca := wireCallPool.Get().(*wireCall)
	ca.req.Op = op
	ca.req.ID = 0 // pooled: a stale nonzero ID would bypass client assignment
	ca.req.Epoch = 0
	ca.req.TTLMillis = 0
	ca.req.N = 0
	ca.req.Start, ca.req.Limit = 0, 0
	ca.req.Items = ca.req.Items[:0]
	ca.req.Trace = false
	ca.req.Span = nil
	return ca
}

func grantLease(g wire.Grant) LeaseResponse {
	return LeaseResponse{Name: int(g.Name), Token: g.Token, DeadlineUnixMillis: g.DeadlineUnixMilli}
}

// Acquire requests one lease; same contract as Client.Acquire, with the
// frame's retry-after field standing in for the Retry-After headers.
func (w *WireClient) Acquire(ttlMillis int64) (LeaseResponse, int, time.Duration, error) {
	ca := begin(wire.OpAcquire)
	defer wireCallPool.Put(ca)
	ca.req.TTLMillis = ttlMillis
	if err := w.c.Do(&ca.req, &ca.resp); err != nil {
		return LeaseResponse{}, 0, 0, err
	}
	status := int(ca.resp.Status)
	if ca.resp.Status == wire.StatusUnavailable {
		return LeaseResponse{}, status, time.Duration(ca.resp.RetryAfterMillis) * time.Millisecond, nil
	}
	if ca.resp.Status != wire.StatusOK {
		return LeaseResponse{}, status, 0, nil
	}
	return grantLease(ca.resp.Grants[0]), status, 0, nil
}

// Renew extends a lease; same contract as Client.Renew.
func (w *WireClient) Renew(name int, token uint64, ttlMillis int64) (LeaseResponse, int, error) {
	ca := begin(wire.OpRenew)
	defer wireCallPool.Put(ca)
	ca.req.TTLMillis = ttlMillis
	ca.req.Items = append(ca.req.Items, wire.Ref{Name: int64(name), Token: token})
	if err := w.c.Do(&ca.req, &ca.resp); err != nil {
		return LeaseResponse{}, 0, err
	}
	if ca.resp.Status != wire.StatusOK {
		return LeaseResponse{}, int(ca.resp.Status), nil
	}
	return grantLease(ca.resp.Grants[0]), int(ca.resp.Status), nil
}

// Release frees a lease; same contract as Client.Release.
func (w *WireClient) Release(name int, token uint64) (int, error) {
	ca := begin(wire.OpRelease)
	defer wireCallPool.Put(ca)
	ca.req.Items = append(ca.req.Items, wire.Ref{Name: int64(name), Token: token})
	if err := w.c.Do(&ca.req, &ca.resp); err != nil {
		return 0, err
	}
	return int(ca.resp.Status), nil
}

// Stats fetches the service statistics over the wire connection.
func (w *WireClient) Stats() (StatsResponse, error) {
	ca := begin(wire.OpStats)
	defer wireCallPool.Put(ca)
	var s StatsResponse
	if err := w.c.Do(&ca.req, &ca.resp); err != nil {
		return s, err
	}
	if ca.resp.Status != wire.StatusOK {
		return s, fmt.Errorf("server: wire stats returned status %d (%s)", ca.resp.Status, ca.resp.Code)
	}
	return s, json.Unmarshal(ca.resp.Blob, &s)
}

// AcquireBatch grants up to n leases in one frame. A 503 (nothing granted)
// carries the server's retry pacing; a partial grant is a 200 whose length
// says how much namespace was left.
func (w *WireClient) AcquireBatch(n int, ttlMillis int64, dst []LeaseResponse) ([]LeaseResponse, int, time.Duration, error) {
	ca := begin(wire.OpAcquireN)
	defer wireCallPool.Put(ca)
	ca.req.TTLMillis = ttlMillis
	ca.req.N = uint32(n)
	if err := w.c.Do(&ca.req, &ca.resp); err != nil {
		return dst, 0, 0, err
	}
	status := int(ca.resp.Status)
	if ca.resp.Status == wire.StatusUnavailable {
		return dst, status, time.Duration(ca.resp.RetryAfterMillis) * time.Millisecond, nil
	}
	if ca.resp.Status != wire.StatusOK {
		return dst, status, 0, nil
	}
	for _, g := range ca.resp.Grants {
		dst = append(dst, grantLease(g))
	}
	return dst, status, 0, nil
}

// RenewSession bulk-renews every lease in refs to one shared TTL, one round
// trip for the whole session set. Results are index-aligned with refs.
func (w *WireClient) RenewSession(refs []LeaseRef, ttlMillis int64, dst []RenewResult) ([]RenewResult, int, error) {
	ca := begin(wire.OpRenewSession)
	defer wireCallPool.Put(ca)
	ca.req.TTLMillis = ttlMillis
	for _, ref := range refs {
		ca.req.Items = append(ca.req.Items, wire.Ref{Name: int64(ref.Name), Token: ref.Token})
	}
	if err := w.c.Do(&ca.req, &ca.resp); err != nil {
		return dst, 0, err
	}
	if ca.resp.Status != wire.StatusOK {
		return dst, int(ca.resp.Status), nil
	}
	for _, it := range ca.resp.Items {
		dst = append(dst, RenewResult{Status: int(it.Status), Code: it.Code.String(), DeadlineUnixMillis: it.DeadlineUnixMilli})
	}
	return dst, int(ca.resp.Status), nil
}

// ReleaseBatch frees every lease in refs in one round trip. Results are
// index-aligned with refs; deadlines are always zero.
func (w *WireClient) ReleaseBatch(refs []LeaseRef, dst []RenewResult) ([]RenewResult, int, error) {
	ca := begin(wire.OpReleaseN)
	defer wireCallPool.Put(ca)
	for _, ref := range refs {
		ca.req.Items = append(ca.req.Items, wire.Ref{Name: int64(ref.Name), Token: ref.Token})
	}
	if err := w.c.Do(&ca.req, &ca.resp); err != nil {
		return dst, 0, err
	}
	if ca.resp.Status != wire.StatusOK {
		return dst, int(ca.resp.Status), nil
	}
	for _, it := range ca.resp.Items {
		dst = append(dst, RenewResult{Status: int(it.Status), Code: it.Code.String()})
	}
	return dst, int(ca.resp.Status), nil
}

// WireCounters exposes the underlying connection pool's syscall-efficiency
// telemetry; loadgen reports it when the API it drives offers it.
func (w *WireClient) WireCounters() wire.Counters { return w.c.Counters() }
