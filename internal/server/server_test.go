package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/lease"
	"github.com/levelarray/levelarray/internal/shard"
)

// newTestService starts an httptest service over a fresh manager.
func newTestService(t *testing.T, capacity int, tick time.Duration) (*httptest.Server, *lease.Manager) {
	t.Helper()
	arr := core.MustNew(core.Config{Capacity: capacity})
	mgr := lease.MustNewManager(arr, lease.Config{TickInterval: tick})
	mgr.Start()
	srv := httptest.NewServer(New(mgr, Config{DefaultTTL: time.Second}))
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})
	return srv, mgr
}

func TestAcquireRenewReleaseOverHTTP(t *testing.T) {
	srv, _ := newTestService(t, 8, 10*time.Millisecond)
	c := NewClient(srv.URL, srv.Client())

	l, status, _, err := c.Acquire(5000)
	if err != nil || status != http.StatusOK {
		t.Fatalf("acquire: status %d err %v", status, err)
	}
	if l.DeadlineUnixMillis == 0 {
		t.Fatal("finite lease must report a deadline")
	}

	renewed, status, err := c.Renew(l.Name, l.Token, 5000)
	if err != nil || status != http.StatusOK {
		t.Fatalf("renew: status %d err %v", status, err)
	}
	if renewed.DeadlineUnixMillis < l.DeadlineUnixMillis {
		t.Fatalf("renewed deadline %d before original %d", renewed.DeadlineUnixMillis, l.DeadlineUnixMillis)
	}

	if status, err = c.Release(l.Name, l.Token); err != nil || status != http.StatusOK {
		t.Fatalf("release: status %d err %v", status, err)
	}
	// A released token is stale: both follow-ups must bounce with 409.
	if _, status, _ = c.Renew(l.Name, l.Token, 5000); status != http.StatusConflict {
		t.Fatalf("stale renew status = %d, want 409", status)
	}
	if status, _ = c.Release(l.Name, l.Token); status != http.StatusConflict {
		t.Fatalf("stale release status = %d, want 409", status)
	}
}

func TestInfiniteTTLOverHTTP(t *testing.T) {
	srv, _ := newTestService(t, 8, 10*time.Millisecond)
	c := NewClient(srv.URL, srv.Client())
	l, status, _, err := c.Acquire(-1)
	if err != nil || status != http.StatusOK {
		t.Fatalf("acquire: status %d err %v", status, err)
	}
	if l.DeadlineUnixMillis != 0 {
		t.Fatalf("infinite lease deadline = %d, want 0", l.DeadlineUnixMillis)
	}
	if status, err = c.Release(l.Name, l.Token); err != nil || status != http.StatusOK {
		t.Fatalf("release: status %d err %v", status, err)
	}
}

func TestFullNamespaceReturns503(t *testing.T) {
	srv, mgr := newTestService(t, 1, 10*time.Millisecond)
	c := NewClient(srv.URL, srv.Client())
	for i := 0; i < mgr.Size(); i++ {
		if _, status, _, err := c.Acquire(-1); err != nil || status != http.StatusOK {
			t.Fatalf("acquire %d: status %d err %v", i, status, err)
		}
	}
	if _, status, _, _ := c.Acquire(-1); status != http.StatusServiceUnavailable {
		t.Fatalf("acquire on full namespace status = %d, want 503", status)
	}
}

func TestCollectAndStatsEndpoints(t *testing.T) {
	srv, _ := newTestService(t, 8, 10*time.Millisecond)
	c := NewClient(srv.URL, srv.Client())
	l, _, _, err := c.Acquire(5000)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}

	resp, err := srv.Client().Get(srv.URL + "/collect")
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	var collected CollectResponse
	if err := json.NewDecoder(resp.Body).Decode(&collected); err != nil {
		t.Fatalf("decoding collect: %v", err)
	}
	resp.Body.Close()
	if collected.Count != 1 || len(collected.Names) != 1 || collected.Names[0] != l.Name {
		t.Fatalf("collect = %+v, want just name %d", collected, l.Name)
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Lease.Active != 1 || stats.Lease.Acquires != 1 {
		t.Fatalf("stats.Lease = %+v", stats.Lease)
	}
	if stats.TickMillis != 10 {
		t.Fatalf("stats.TickMillis = %d, want 10", stats.TickMillis)
	}
	if stats.Capacity != 8 {
		t.Fatalf("stats.Capacity = %d, want 8", stats.Capacity)
	}
}

func TestStatsReportsShards(t *testing.T) {
	arr := shard.MustNew(shard.Config{Shards: 4, Capacity: 32})
	mgr := lease.MustNewManager(arr, lease.Config{TickInterval: 10 * time.Millisecond})
	srv := httptest.NewServer(New(mgr, Config{}))
	defer srv.Close()
	defer mgr.Close()
	c := NewClient(srv.URL, srv.Client())
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if len(stats.Shards) != 4 {
		t.Fatalf("stats.Shards has %d entries, want 4", len(stats.Shards))
	}
}

func TestBadRequests(t *testing.T) {
	srv, _ := newTestService(t, 8, 10*time.Millisecond)
	for _, tc := range []struct {
		method, path, body string
		wantStatus         int
	}{
		{"POST", "/acquire", "{not json", http.StatusBadRequest},
		{"POST", "/acquire", `{"surprise": 1}`, http.StatusBadRequest},
		{"POST", "/renew", `{"name": -5, "token": 1}`, http.StatusConflict},
		{"POST", "/release", `{"name": 999999, "token": 1}`, http.StatusConflict},
		{"GET", "/acquire", "", http.StatusMethodNotAllowed},
		{"POST", "/collect", "", http.StatusMethodNotAllowed},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s %q: status %d, want %d", tc.method, tc.path, tc.body, resp.StatusCode, tc.wantStatus)
		}
	}
}

func TestGracefulShutdown(t *testing.T) {
	arr := core.MustNew(core.Config{Capacity: 8})
	mgr := lease.MustNewManager(arr, lease.Config{TickInterval: 10 * time.Millisecond})
	mgr.Start()
	srv := New(mgr, Config{})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, addr) }()

	c := NewClient("http://"+addr, nil)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, _, err := c.Acquire(-1); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service did not come up within 2s")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v on graceful shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}
	if _, err := mgr.Acquire(0); err != lease.ErrClosed {
		t.Fatalf("manager not closed after shutdown: %v", err)
	}
}

// TestLoadgenLoopbackSmoke is the in-process version of the CI service-smoke
// job: a closed-loop run with a 10% crash fraction over HTTP loopback whose
// report must be violation-free — zero duplicate names among concurrently
// held leases, no early reissues, no lost releases, every abandoned lease
// reclaimed (and its token fenced) within two expirer ticks. The full
// >= 100k-op acceptance run lives in CI via cmd/laload; this keeps a scaled
// version in `go test` so regressions fail fast locally.
func TestLoadgenLoopbackSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback load run in -short mode")
	}
	acquires := int64(3000)
	arr := shard.MustNew(shard.Config{Shards: 4, Capacity: 1024})
	mgr := lease.MustNewManager(arr, lease.Config{TickInterval: 20 * time.Millisecond})
	mgr.Start()
	srv := httptest.NewServer(New(mgr, Config{DefaultTTL: time.Second}))
	defer srv.Close()
	defer mgr.Close()

	report, err := RunLoad(LoadConfig{
		BaseURL:      srv.URL,
		Clients:      8,
		Acquires:     acquires,
		TTL:          300 * time.Millisecond,
		HoldMean:     200 * time.Microsecond,
		CrashPercent: 10,
		RenewPercent: 20,
		Seed:         42,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if v := report.Violations(); v != nil {
		t.Fatalf("load run violated the lease contract: %v\nreport: %+v", v, report)
	}
	if report.Acquires != uint64(acquires) {
		t.Fatalf("completed %d acquires, want %d", report.Acquires, acquires)
	}
	if report.Crashes == 0 || report.Renews == 0 {
		t.Fatalf("scenario did not exercise crashes/renews: %+v", report)
	}
	if report.StaleRejected == 0 {
		t.Fatal("no stale-token probes were verified")
	}
	t.Logf("ops=%d (%.0f ops/s) p50=%v p99=%v crashes=%d stale-rejected=%d",
		report.Ops(), report.Throughput(), report.AcquireP50, report.AcquireP99,
		report.Crashes, report.StaleRejected)
}

// TestLoadgenDetectsViolations feeds the verifier a deliberately broken
// service (it reissues a constant name) and asserts the ledger catches it —
// the smoke test is only as good as its ability to fail.
func TestLoadgenDetectsViolations(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /acquire", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, LeaseResponse{Name: 7, Token: 1, DeadlineUnixMillis: time.Now().Add(time.Hour).UnixMilli()})
	})
	mux.HandleFunc("POST /release", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, ReleaseResponse{Released: true})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, StatsResponse{TickMillis: 10})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	report, err := RunLoad(LoadConfig{
		BaseURL:  srv.URL,
		Clients:  4,
		Acquires: 64,
		TTL:      50 * time.Millisecond,
		HoldMean: 2 * time.Millisecond, // overlapping holds expose the reissue
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if report.DuplicateNames == 0 {
		t.Fatalf("verifier missed the duplicate names: %+v", report)
	}
	if report.Violations() == nil {
		t.Fatal("Violations() empty for a broken service")
	}
}

// TestClientHelpers exercises the typed client against error statuses.
func TestClientHelpers(t *testing.T) {
	srv, _ := newTestService(t, 2, 10*time.Millisecond)
	c := NewClient(srv.URL, nil)
	l, status, _, err := c.Acquire(0) // 0 selects the server default TTL
	if err != nil || status != http.StatusOK {
		t.Fatalf("acquire: status %d err %v", status, err)
	}
	if status, err = c.Release(l.Name, l.Token); err != nil || status != http.StatusOK {
		t.Fatalf("release: status %d err %v", status, err)
	}
	if _, err := c.Stats(); err != nil {
		t.Fatalf("stats: %v", err)
	}
}

// TestFullResponseCarriesRetryAfter asserts a saturated acquire advertises
// its retry pacing in both the standard and millisecond-precision headers,
// and that the client surfaces it as the hint.
func TestFullResponseCarriesRetryAfter(t *testing.T) {
	tick := 30 * time.Millisecond
	srv, mgr := newTestService(t, 1, tick)
	c := NewClient(srv.URL, srv.Client())
	for i := 0; i < mgr.Size(); i++ {
		if _, status, _, err := c.Acquire(-1); err != nil || status != http.StatusOK {
			t.Fatalf("acquire %d: status %d err %v", i, status, err)
		}
	}

	resp, err := srv.Client().Post(srv.URL+"/acquire", "application/json", bytes.NewReader([]byte(`{"ttl_ms": -1}`)))
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want %q (tick rounded up to whole seconds)", got, "1")
	}
	if got := resp.Header.Get("X-Retry-After-Ms"); got != "30" {
		t.Fatalf("X-Retry-After-Ms = %q, want %q", got, "30")
	}
	if hint := RetryAfterHint(resp.Header, 0); hint != tick {
		t.Fatalf("RetryAfterHint = %v, want %v", hint, tick)
	}

	if _, status, hint, err := c.Acquire(-1); err != nil || status != http.StatusServiceUnavailable || hint != tick {
		t.Fatalf("client acquire: status %d hint %v err %v, want 503 hint %v", status, hint, err, tick)
	}
}

// TestRetryAfterHintFallbacks covers the header-parsing precedence.
func TestRetryAfterHintFallbacks(t *testing.T) {
	h := http.Header{}
	if got := RetryAfterHint(h, 42*time.Millisecond); got != 42*time.Millisecond {
		t.Fatalf("empty headers hint = %v, want fallback", got)
	}
	h.Set("Retry-After", "2")
	if got := RetryAfterHint(h, 0); got != 2*time.Second {
		t.Fatalf("seconds hint = %v, want 2s", got)
	}
	h.Set("X-Retry-After-Ms", "150")
	if got := RetryAfterHint(h, 0); got != 150*time.Millisecond {
		t.Fatalf("ms hint = %v, want 150ms", got)
	}
	h.Set("X-Retry-After-Ms", "garbage")
	if got := RetryAfterHint(h, 0); got != 2*time.Second {
		t.Fatalf("bad ms hint = %v, want 2s from Retry-After", got)
	}
}

// TestLeasesEndpointPaginates drives GET /leases through multiple pages and
// checks it lists exactly the active sessions.
func TestLeasesEndpointPaginates(t *testing.T) {
	srv, _ := newTestService(t, 16, 10*time.Millisecond)
	c := NewClient(srv.URL, srv.Client())

	granted := make(map[int]uint64)
	for i := 0; i < 6; i++ {
		l, status, _, err := c.Acquire(60_000)
		if err != nil || status != http.StatusOK {
			t.Fatalf("acquire: status %d err %v", status, err)
		}
		granted[l.Name] = l.Token
	}

	seen := make(map[int]SessionJSON)
	start := "0"
	for start != "" {
		resp, err := srv.Client().Get(srv.URL + "/leases?limit=2&start=" + start)
		if err != nil {
			t.Fatalf("GET /leases: %v", err)
		}
		var page LeasesResponse
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatalf("decode: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /leases status = %d", resp.StatusCode)
		}
		if page.Active != len(granted) {
			t.Fatalf("active = %d, want %d", page.Active, len(granted))
		}
		if len(page.Sessions) > 2 {
			t.Fatalf("page of %d exceeds limit 2", len(page.Sessions))
		}
		for _, s := range page.Sessions {
			if _, dup := seen[s.Name]; dup {
				t.Fatalf("name %d listed twice", s.Name)
			}
			seen[s.Name] = s
		}
		if page.Next == -1 {
			start = ""
		} else {
			start = fmt.Sprintf("%d", page.Next)
		}
	}

	if len(seen) != len(granted) {
		t.Fatalf("listed %d sessions, want %d", len(seen), len(granted))
	}
	for name, token := range granted {
		s, ok := seen[name]
		if !ok {
			t.Fatalf("granted name %d missing from /leases", name)
		}
		if s.Token != token {
			t.Fatalf("name %d token %d, want %d", name, s.Token, token)
		}
		if s.DeadlineUnixMillis == 0 {
			t.Fatalf("finite lease %d listed without deadline", name)
		}
	}

	// Malformed cursors are 400s, not panics.
	for _, q := range []string{"?start=-1", "?start=x", "?limit=0", "?limit=x"} {
		resp, err := srv.Client().Get(srv.URL + "/leases" + q)
		if err != nil {
			t.Fatalf("GET /leases%s: %v", q, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /leases%s status = %d, want 400", q, resp.StatusCode)
		}
	}
}
