// Package server exposes a lease.Manager over HTTP/JSON: the network name
// service that turns the in-process Get/Free/Collect contract into something
// remote clients can consume, with TTL-bounded sessions standing in for the
// crash-safety the in-process discipline gets for free.
//
// Endpoints (all JSON):
//
//	POST /acquire  {"ttl_ms": 5000}                      -> lease
//	POST /renew    {"name": 3, "token": 97, "ttl_ms": 5000} -> lease
//	POST /release  {"name": 3, "token": 97}              -> {"released": true}
//	GET  /collect                                        -> {"count": n, "names": [...]}
//	GET  /leases?start=0&limit=100                       -> active-session page
//	GET  /stats                                          -> lease + shard statistics
//	GET  /healthz                                        -> build + uptime identity
//
// Status codes map the lease-layer errors: 503 when the namespace is
// exhausted (activity.ErrFull) or the manager is shut down, 409 on fencing
// failures (stale token, not leased), 400 on malformed requests. The 409
// body carries an error code distinguishing the two fencing cases. A full
// 503 carries Retry-After (whole seconds, as HTTP requires) and
// X-Retry-After-Ms (exact milliseconds, one expirer tick) so saturated
// clients can pace their retries on the service's reclaim granularity
// instead of hot-spinning.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"runtime"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/lease"
	"github.com/levelarray/levelarray/internal/shard"
	"github.com/levelarray/levelarray/internal/trace"
)

// maxBodyBytes bounds request bodies; every request fits in a handful of
// integers.
const maxBodyBytes = 4096

// AcquireRequest is the body of POST /acquire.
type AcquireRequest struct {
	// TTLMillis is the requested lease TTL; 0 (or omitted) selects the
	// server's default TTL, a negative value requests an infinite lease.
	TTLMillis int64 `json:"ttl_ms"`
}

// RenewRequest is the body of POST /renew.
type RenewRequest struct {
	Name      int    `json:"name"`
	Token     uint64 `json:"token"`
	TTLMillis int64  `json:"ttl_ms"`
}

// ReleaseRequest is the body of POST /release.
type ReleaseRequest struct {
	Name  int    `json:"name"`
	Token uint64 `json:"token"`
}

// LeaseResponse is the body returned by /acquire and /renew.
type LeaseResponse struct {
	Name  int    `json:"name"`
	Token uint64 `json:"token"`
	// DeadlineUnixMillis is the lease deadline; 0 for an infinite lease.
	DeadlineUnixMillis int64 `json:"deadline_unix_ms"`
}

// ReleaseResponse is the body returned by /release.
type ReleaseResponse struct {
	Released bool `json:"released"`
}

// CollectResponse is the body returned by /collect.
type CollectResponse struct {
	Count int   `json:"count"`
	Names []int `json:"names"`
}

// SessionJSON is one active session in a /leases page.
type SessionJSON struct {
	Name  int    `json:"name"`
	Token uint64 `json:"token"`
	// DeadlineUnixMillis is the session deadline; 0 for an infinite lease.
	DeadlineUnixMillis int64 `json:"deadline_unix_ms"`
}

// LeasesResponse is the body returned by /leases: one page of active
// sessions in ascending name order. Next is the start cursor of the
// following page, -1 once the namespace is exhausted.
type LeasesResponse struct {
	Sessions []SessionJSON `json:"sessions"`
	Next     int           `json:"next"`
	Active   int           `json:"active"`
}

// /leases pagination bounds.
const (
	DefaultLeasesPageLimit = 100
	MaxLeasesPageLimit     = 1000
)

// StatsResponse is the body returned by /stats.
type StatsResponse struct {
	Lease        lease.Stats        `json:"lease"`
	Capacity     int                `json:"capacity"`
	Size         int                `json:"size"`
	TickMillis   int64              `json:"tick_ms"`
	UptimeMillis int64              `json:"uptime_ms"`
	Shards       []shard.ShardStats `json:"shards,omitempty"`
}

// ErrorResponse is the body of every non-2xx response. RequestID echoes the
// request's trace id (the X-Request-ID header, minted when absent) so a
// failed operation can be matched to server logs without header archaeology.
type ErrorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// Error codes returned in ErrorResponse.Error.
const (
	ErrCodeFull       = "full"
	ErrCodeStaleToken = "stale_token"
	ErrCodeNotLeased  = "not_leased"
	ErrCodeClosed     = "closed"
	ErrCodeTTL        = "ttl_too_long"
	ErrCodeBadRequest = "bad_request"
)

// Config parameterizes a Server.
type Config struct {
	// DefaultTTL is applied when an acquire request omits its TTL (or sends
	// 0). Zero selects 10s.
	DefaultTTL time.Duration
	// Metrics, when non-nil, instruments the lease operations and mounts
	// GET /metrics plus the pprof routes on this server's mux.
	Metrics *Metrics
	// MetricsElsewhere suppresses the /metrics + pprof mounts (the operations
	// still record) when the registry is served on a dedicated listener.
	MetricsElsewhere bool
	// Tracer, when non-nil, opens a phase-attributed span per lease operation
	// and serves the span rings at GET /debug/trace and /debug/trace/slow.
	Tracer *trace.Recorder
	// Events, when non-nil, is the node's control-plane journal, served at
	// GET /debug/events.
	Events *trace.EventLog
}

// Server serves the lease API for one manager. Build it with New; it
// implements http.Handler.
type Server struct {
	mgr     *lease.Manager
	cfg     Config
	mux     *http.ServeMux
	h       http.Handler
	started time.Time
}

// New builds a Server over mgr. The caller remains responsible for starting
// the manager's expirer (mgr.Start) and closing it on shutdown.
func New(mgr *lease.Manager, cfg Config) *Server {
	if cfg.DefaultTTL <= 0 {
		cfg.DefaultTTL = 10 * time.Second
	}
	s := &Server{mgr: mgr, cfg: cfg, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("POST /acquire", s.handleAcquire)
	s.mux.HandleFunc("POST /renew", s.handleRenew)
	s.mux.HandleFunc("POST /release", s.handleRelease)
	s.mux.HandleFunc("GET /collect", s.handleCollect)
	s.mux.HandleFunc("GET /leases", s.handleLeases)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if cfg.Metrics != nil && !cfg.MetricsElsewhere {
		MountMetrics(s.mux, cfg.Metrics.Registry)
	}
	trace.Mount(s.mux, cfg.Tracer, cfg.Events)
	s.h = WithRequestID(s.mux)
	return s
}

// ServeHTTP dispatches to the lease API through the request-ID middleware.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.h.ServeHTTP(w, r) }

// Serve runs the service on addr until ctx is cancelled, then shuts the
// listener down gracefully (draining in-flight requests) and closes the
// manager. It returns nil on a clean shutdown.
func (s *Server) Serve(ctx context.Context, addr string) error {
	srv := &http.Server{Addr: addr, Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		s.mgr.Close()
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	s.mgr.Close()
	if err != nil {
		return fmt.Errorf("server: shutdown: %w", err)
	}
	return nil
}

// DecodeJSON parses a JSON request body into dst with a size cap, writing
// the 400 itself on failure. Shared with the cluster node so both layers
// apply the same strictness and error shape.
func DecodeJSON(w http.ResponseWriter, r *http.Request, dst any, maxBytes int64) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		WriteError(w, http.StatusBadRequest, ErrCodeBadRequest)
		return false
	}
	return true
}

// decode applies DecodeJSON with this server's body cap.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	return DecodeJSON(w, r, dst, maxBodyBytes)
}

// WriteJSON writes one JSON response.
func WriteJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeJSON(w http.ResponseWriter, status int, body any) { WriteJSON(w, status, body) }

// WriteError writes one ErrorResponse-coded failure, echoing the request's
// trace id when the ResponseWriter passed through WithRequestID.
func WriteError(w http.ResponseWriter, status int, code string) {
	WriteJSON(w, status, ErrorResponse{Error: code, RequestID: ResponseRequestID(w)})
}

func writeError(w http.ResponseWriter, status int, code string) { WriteError(w, status, code) }

// WriteUnavailable writes a 503 with the given error code and retry hints:
// the standard Retry-After header in whole seconds (rounded up, as HTTP
// requires) plus X-Retry-After-Ms carrying the exact wait, so loopback
// clients are not forced onto a one-second retry floor.
func WriteUnavailable(w http.ResponseWriter, code string, wait time.Duration) {
	if wait <= 0 {
		wait = time.Millisecond
	}
	secs := int64((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	millis := wait.Milliseconds()
	if millis < 1 {
		millis = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	w.Header().Set("X-Retry-After-Ms", strconv.FormatInt(millis, 10))
	writeError(w, http.StatusServiceUnavailable, code)
}

// RetryAfterHint extracts the retry pacing from a 503's headers, preferring
// the millisecond-precision X-Retry-After-Ms over the whole-second
// Retry-After; fallback is returned when neither parses.
func RetryAfterHint(h http.Header, fallback time.Duration) time.Duration {
	if v := h.Get("X-Retry-After-Ms"); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	if v := h.Get("Retry-After"); v != "" {
		if secs, err := strconv.ParseInt(v, 10, 64); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return fallback
}

// WriteLeaseError maps a lease-layer error to its status and code; the
// cluster node shares it so both layers speak the same error vocabulary.
func WriteLeaseError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, activity.ErrFull):
		writeError(w, http.StatusServiceUnavailable, ErrCodeFull)
	case errors.Is(err, lease.ErrStaleToken):
		writeError(w, http.StatusConflict, ErrCodeStaleToken)
	case errors.Is(err, lease.ErrNotLeased):
		writeError(w, http.StatusConflict, ErrCodeNotLeased)
	case errors.Is(err, lease.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, ErrCodeClosed)
	case errors.Is(err, lease.ErrTTLTooLong):
		writeError(w, http.StatusBadRequest, ErrCodeTTL)
	default:
		writeError(w, http.StatusInternalServerError, ErrCodeBadRequest)
	}
}

// LeaseErrCode maps a lease-layer error to its wire error code ("" for nil):
// the span-outcome counterpart of WriteLeaseError's status mapping.
func LeaseErrCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, activity.ErrFull):
		return ErrCodeFull
	case errors.Is(err, lease.ErrStaleToken):
		return ErrCodeStaleToken
	case errors.Is(err, lease.ErrNotLeased):
		return ErrCodeNotLeased
	case errors.Is(err, lease.ErrClosed):
		return ErrCodeClosed
	case errors.Is(err, lease.ErrTTLTooLong):
		return ErrCodeTTL
	default:
		return ErrCodeBadRequest
	}
}

// TraceForceHeader, when present on a request, forces the operation's span
// past the recorder's sampling — the HTTP analogue of the wire trace flag.
const TraceForceHeader = "X-Trace"

// beginSpan opens the handler-side span for one operation, keyed by the
// request's trace id. Returns nil (a valid no-op span) when tracing is off.
func (s *Server) beginSpan(op string, r *http.Request) *trace.Op {
	sp := s.cfg.Tracer.Begin(op, RequestID(r))
	if sp != nil && r.Header.Get(TraceForceHeader) != "" {
		sp.Force()
	}
	return sp
}

// ttlOf maps the wire TTL encoding (0 = server default, negative = infinite)
// to the lease layer's (<= 0 = infinite).
func (s *Server) ttlOf(millis int64) time.Duration {
	switch {
	case millis == 0:
		return s.cfg.DefaultTTL
	case millis < 0:
		return 0
	default:
		return time.Duration(millis) * time.Millisecond
	}
}

func leaseResponse(l lease.Lease) LeaseResponse {
	resp := LeaseResponse{Name: l.Name, Token: l.Token}
	if !l.Deadline.IsZero() {
		resp.DeadlineUnixMillis = l.Deadline.UnixMilli()
	}
	return resp
}

func (s *Server) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req AcquireRequest
	if !decode(w, r, &req) {
		return
	}
	sp := s.beginSpan("acquire", r)
	start := time.Now()
	l, err := s.mgr.AcquireSpan(s.ttlOf(req.TTLMillis), sp)
	s.cfg.Metrics.ObserveAcquireRID(start, err, sp.RID())
	sp.Finish(LeaseErrCode(err))
	if err != nil {
		if errors.Is(err, activity.ErrFull) {
			// Slots free up when leases expire, so one expirer tick is the
			// natural retry pacing for a saturated namespace.
			WriteUnavailable(w, ErrCodeFull, s.mgr.TickInterval())
			return
		}
		WriteLeaseError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, leaseResponse(l))
}

func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if !decode(w, r, &req) {
		return
	}
	sp := s.beginSpan("renew", r)
	start := time.Now()
	l, err := s.mgr.RenewSpan(req.Name, req.Token, s.ttlOf(req.TTLMillis), sp)
	s.cfg.Metrics.ObserveRenewRID(start, err, sp.RID())
	sp.Finish(LeaseErrCode(err))
	if err != nil {
		WriteLeaseError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, leaseResponse(l))
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req ReleaseRequest
	if !decode(w, r, &req) {
		return
	}
	sp := s.beginSpan("release", r)
	start := time.Now()
	err := s.mgr.ReleaseSpan(req.Name, req.Token, sp)
	s.cfg.Metrics.ObserveReleaseRID(start, err, sp.RID())
	sp.Finish(LeaseErrCode(err))
	if err != nil {
		WriteLeaseError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ReleaseResponse{Released: true})
}

func (s *Server) handleCollect(w http.ResponseWriter, r *http.Request) {
	names := s.mgr.Collect(nil)
	if names == nil {
		names = []int{}
	}
	writeJSON(w, http.StatusOK, CollectResponse{Count: len(names), Names: names})
}

// ParseLeasesQuery reads the start/limit pagination parameters of a /leases
// request, applying the default and maximum page limits. Shared with the
// cluster node, whose /leases endpoint pages the same wire API.
func ParseLeasesQuery(r *http.Request) (start, limit int, err error) {
	start, limit = 0, DefaultLeasesPageLimit
	q := r.URL.Query()
	if v := q.Get("start"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 0 {
			return 0, 0, fmt.Errorf("invalid start %q", v)
		}
		start = n
	}
	if v := q.Get("limit"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 1 {
			return 0, 0, fmt.Errorf("invalid limit %q", v)
		}
		limit = n
	}
	if limit > MaxLeasesPageLimit {
		limit = MaxLeasesPageLimit
	}
	return start, limit, nil
}

// LeasesPage turns one Manager.Sessions page into the /leases wire shape.
func LeasesPage(mgr *lease.Manager, r *http.Request) (LeasesResponse, error) {
	start, limit, err := ParseLeasesQuery(r)
	if err != nil {
		return LeasesResponse{}, err
	}
	page, next := mgr.Sessions(start, limit)
	resp := LeasesResponse{Sessions: make([]SessionJSON, 0, len(page)), Next: next, Active: mgr.Active()}
	for _, sess := range page {
		j := SessionJSON{Name: sess.Name, Token: sess.Token}
		if !sess.Deadline.IsZero() {
			j.DeadlineUnixMillis = sess.Deadline.UnixMilli()
		}
		resp.Sessions = append(resp.Sessions, j)
	}
	return resp, nil
}

func (s *Server) handleLeases(w http.ResponseWriter, r *http.Request) {
	resp, err := LeasesPage(s.mgr, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Lease:        s.mgr.Stats(),
		Capacity:     s.mgr.Capacity(),
		Size:         s.mgr.Size(),
		TickMillis:   s.mgr.TickInterval().Milliseconds(),
		UptimeMillis: time.Since(s.started).Milliseconds(),
	}
	if sharded, ok := s.mgr.Array().(*shard.Sharded); ok {
		resp.Shards = sharded.ShardStats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// HealthzResponse is the body of GET /healthz: liveness plus enough build
// and uptime identity to tell a fresh restart from a long-lived process.
type HealthzResponse struct {
	OK           bool   `json:"ok"`
	Version      string `json:"version"`
	GoVersion    string `json:"go_version"`
	UptimeMillis int64  `json:"uptime_ms"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthzResponse{
		OK:           true,
		Version:      BuildVersion(),
		GoVersion:    runtime.Version(),
		UptimeMillis: time.Since(s.started).Milliseconds(),
	})
}
