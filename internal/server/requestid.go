package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"

	"github.com/levelarray/levelarray/internal/registry"
)

// RequestIDHeader is the HTTP request-tracing header. The binary protocol's
// equivalent is the frame header's 8-byte request id, which the routed
// cluster client mints from the same per-operation sequence, so one
// operation keeps one identity across protocol hops.
const RequestIDHeader = "X-Request-ID"

type ridCtxKey struct{}

var (
	ridSalt string
	ridSeq  atomic.Uint64
)

func init() {
	var b [4]byte
	if _, err := rand.Read(b[:]); err == nil {
		ridSalt = hex.EncodeToString(b[:])
	} else {
		ridSalt = "00000000"
	}
}

// NewRequestID mints a process-unique request id: a per-process random salt
// plus a sequence number, e.g. "la-9f2c41aa-1b".
func NewRequestID() string {
	return fmt.Sprintf("la-%s-%x", ridSalt, ridSeq.Add(1))
}

// WithRequestID is the tracing middleware both facades (standalone server
// and cluster node) wrap their mux with: it honors a well-formed incoming
// X-Request-ID, mints one otherwise, echoes it on the response, and makes it
// available to handlers (RequestID) and to the shared error writers
// (ResponseRequestID), so every error payload names the request it failed.
func WithRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid, err := registry.ParseRequestID(r.Header.Get(RequestIDHeader))
		if err != nil {
			rid = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, rid)
		rw := &ridResponseWriter{ResponseWriter: w, rid: rid}
		next.ServeHTTP(rw, r.WithContext(context.WithValue(r.Context(), ridCtxKey{}, rid)))
	})
}

// RequestID returns the request's trace id ("" outside the middleware).
func RequestID(r *http.Request) string {
	v, _ := r.Context().Value(ridCtxKey{}).(string)
	return v
}

// ridResponseWriter carries the request id down to the shared JSON error
// writers without changing their signatures at every call site.
type ridResponseWriter struct {
	http.ResponseWriter
	rid string
}

func (w *ridResponseWriter) RequestID() string { return w.rid }

// ResponseRequestID recovers the trace id from a middleware-wrapped
// ResponseWriter ("" when the middleware is not installed).
func ResponseRequestID(w http.ResponseWriter) string {
	if rw, ok := w.(interface{ RequestID() string }); ok {
		return rw.RequestID()
	}
	return ""
}
