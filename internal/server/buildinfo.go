package server

import (
	"runtime"
	"runtime/debug"
	"sync"

	"github.com/levelarray/levelarray/internal/metrics"
	"github.com/levelarray/levelarray/internal/trace"
)

// buildVersion resolves the binary's version once: the module version when
// stamped, else the VCS revision, else "devel".
var buildVersion = sync.OnceValue(func() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	return "devel"
})

// BuildVersion returns the binary's build identity, shared by /healthz and
// the la_build_info metric.
func BuildVersion() string { return buildVersion() }

// RegisterBuildInfo exposes la_build_info{version,go_version}: constant 1,
// the standard identity-as-labels convention, so dashboards can join any
// other family against the deployed build.
func RegisterBuildInfo(reg *metrics.Registry) {
	reg.GaugeFunc("la_build_info", "Build identity; the value is always 1.",
		func() float64 { return 1 },
		metrics.L("version", BuildVersion()), metrics.L("go_version", runtime.Version()))
}

// RegisterTracer exposes the flight recorder's span accounting so scrapes
// can see tracing state and slow-op pressure without hitting /debug/trace.
func RegisterTracer(reg *metrics.Registry, rec *trace.Recorder) {
	reg.GaugeFunc("la_trace_enabled", "1 when the flight recorder is recording.", func() float64 {
		if rec.Enabled() {
			return 1
		}
		return 0
	})
	reg.CounterFunc("la_trace_spans_started_total", "Spans opened by the flight recorder.", func() uint64 {
		started, _, _ := rec.Counters()
		return started
	})
	reg.CounterFunc("la_trace_spans_finished_total", "Spans sealed by the flight recorder.", func() uint64 {
		_, finished, _ := rec.Counters()
		return finished
	})
	reg.CounterFunc("la_trace_slow_spans_total", "Spans retained as slow ops.", func() uint64 {
		_, _, slow := rec.Counters()
		return slow
	})
}
