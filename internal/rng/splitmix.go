package rng

// SplitMix64 is Steele, Lea and Flood's splittable generator. In this
// repository it is used only to derive well-separated per-thread or
// per-process seeds from a single top-level benchmark seed, so that seeding
// thread i with seed+i does not produce correlated Marsaglia/Lehmer streams.
type SplitMix64 struct {
	state uint64
}

var _ Source = (*SplitMix64)(nil)

// NewSplitMix64 returns a SplitMix64 generator seeded with seed. Unlike the
// xorshift family, SplitMix64 accepts a zero seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Seed re-seeds the generator.
func (s *SplitMix64) Seed(seed uint64) {
	s.state = seed
}

// Uint64 advances the generator and returns the next 64-bit value.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed integer in [0, n).
func (s *SplitMix64) Intn(n int) int {
	return intn(s.Uint64, n)
}

// SeedStream derives count independent seeds from base. It is the standard
// way benchmarks in this repository hand a distinct, decorrelated seed to
// every worker goroutine or simulated process.
func SeedStream(base uint64, count int) []uint64 {
	src := NewSplitMix64(base)
	seeds := make([]uint64, count)
	for i := range seeds {
		seeds[i] = src.Uint64()
	}
	return seeds
}

// Kind identifies a generator family. It is used by benchmark flags so the
// paper's "Marsaglia vs Park-Miller makes no difference" claim can be
// re-checked by switching families from the command line.
type Kind int

// Generator families available to benchmarks and examples.
const (
	KindXorshift Kind = iota + 1
	KindXorshift32
	KindLehmer
	KindSplitMix
)

// String returns the human-readable name of the generator family.
func (k Kind) String() string {
	switch k {
	case KindXorshift:
		return "xorshift64"
	case KindXorshift32:
		return "xorshift32"
	case KindLehmer:
		return "lehmer"
	case KindSplitMix:
		return "splitmix64"
	default:
		return "unknown"
	}
}

// ParseKind maps a flag value to a Kind. It returns KindXorshift and false if
// the name is not recognized.
func ParseKind(name string) (Kind, bool) {
	switch name {
	case "xorshift", "xorshift64", "marsaglia":
		return KindXorshift, true
	case "xorshift32":
		return KindXorshift32, true
	case "lehmer", "parkmiller", "minstd":
		return KindLehmer, true
	case "splitmix", "splitmix64":
		return KindSplitMix, true
	default:
		return KindXorshift, false
	}
}

// New constructs a generator of the given family seeded with seed.
func New(kind Kind, seed uint64) Source {
	switch kind {
	case KindXorshift32:
		return NewXorshift32(seed)
	case KindLehmer:
		return NewLehmer(seed)
	case KindSplitMix:
		return NewSplitMix64(seed)
	default:
		return NewXorshift(seed)
	}
}
