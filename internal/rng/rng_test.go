package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func allKinds() []Kind {
	return []Kind{KindXorshift, KindXorshift32, KindLehmer, KindSplitMix}
}

func TestIntnRange(t *testing.T) {
	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			src := New(kind, 12345)
			for _, bound := range []int{1, 2, 3, 7, 16, 100, 1023, 1024, 1 << 20} {
				for i := 0; i < 1000; i++ {
					v := src.Intn(bound)
					if v < 0 || v >= bound {
						t.Fatalf("Intn(%d) = %d out of range", bound, v)
					}
				}
			}
		})
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	src := NewXorshift(1)
	for _, bound := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", bound)
				}
			}()
			src.Intn(bound)
		}()
	}
}

func TestRange(t *testing.T) {
	src := NewLehmer(99)
	for i := 0; i < 1000; i++ {
		v := Range(src, 5, 10)
		if v < 5 || v > 10 {
			t.Fatalf("Range(5,10) = %d out of range", v)
		}
	}
	// Degenerate single-value range.
	if v := Range(src, 3, 3); v != 3 {
		t.Fatalf("Range(3,3) = %d, want 3", v)
	}
}

func TestRangePanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Range(10,5) did not panic")
		}
	}()
	Range(NewXorshift(1), 10, 5)
}

func TestDeterminism(t *testing.T) {
	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			a := New(kind, 42)
			b := New(kind, 42)
			for i := 0; i < 1000; i++ {
				if av, bv := a.Uint64(), b.Uint64(); av != bv {
					t.Fatalf("step %d: same seed diverged: %d vs %d", i, av, bv)
				}
			}
		})
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			a := New(kind, 1)
			b := New(kind, 2)
			same := 0
			const draws = 64
			for i := 0; i < draws; i++ {
				if a.Uint64() == b.Uint64() {
					same++
				}
			}
			if same == draws {
				t.Fatal("different seeds produced identical streams")
			}
		})
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			src := New(kind, 0)
			var nonZero bool
			for i := 0; i < 16; i++ {
				if src.Uint64() != 0 {
					nonZero = true
				}
			}
			if !nonZero {
				t.Fatal("zero seed produced an all-zero stream")
			}
		})
	}
}

func TestReseedRestartsStream(t *testing.T) {
	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			src := New(kind, 7)
			first := make([]uint64, 32)
			for i := range first {
				first[i] = src.Uint64()
			}
			src.Seed(7)
			for i := range first {
				if got := src.Uint64(); got != first[i] {
					t.Fatalf("step %d after reseed: got %d want %d", i, got, first[i])
				}
			}
		})
	}
}

// TestUniformity applies a coarse chi-squared check over a small number of
// buckets. The threshold is deliberately loose: this is a smoke test that the
// generators are not grossly skewed, not a statistical test suite.
func TestUniformity(t *testing.T) {
	const (
		buckets = 16
		draws   = 160000
	)
	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			src := New(kind, 2024)
			counts := make([]int, buckets)
			for i := 0; i < draws; i++ {
				counts[src.Intn(buckets)]++
			}
			expected := float64(draws) / buckets
			var chi2 float64
			for _, c := range counts {
				d := float64(c) - expected
				chi2 += d * d / expected
			}
			// 15 degrees of freedom; 99.99-th percentile is ~44.3. Use 60 to
			// keep the test robust across seeds.
			if chi2 > 60 {
				t.Fatalf("chi-squared %.2f too large; counts=%v", chi2, counts)
			}
		})
	}
}

func TestLehmerStateStaysInRange(t *testing.T) {
	l := NewLehmer(123456789)
	for i := 0; i < 100000; i++ {
		v := l.next()
		if v == 0 || v >= lehmerModulus {
			t.Fatalf("Lehmer state %d escaped [1, m-1] at step %d", v, i)
		}
	}
}

func TestLehmerKnownSequence(t *testing.T) {
	// The MINSTD sequence from seed 1 is a classic reference vector:
	// 16807, 282475249, 1622650073, ...
	l := NewLehmer(1)
	want := []uint64{16807, 282475249, 1622650073, 984943658, 1144108930}
	for i, w := range want {
		if got := l.next(); got != w {
			t.Fatalf("step %d: got %d want %d", i, got, w)
		}
	}
}

func TestSeedStream(t *testing.T) {
	seeds := SeedStream(7, 100)
	if len(seeds) != 100 {
		t.Fatalf("len = %d, want 100", len(seeds))
	}
	seen := make(map[uint64]bool, len(seeds))
	for _, s := range seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d in stream", s)
		}
		seen[s] = true
	}
	again := SeedStream(7, 100)
	for i := range seeds {
		if seeds[i] != again[i] {
			t.Fatal("SeedStream is not deterministic")
		}
	}
	other := SeedStream(8, 100)
	same := 0
	for i := range seeds {
		if seeds[i] == other[i] {
			same++
		}
	}
	if same == len(seeds) {
		t.Fatal("SeedStream ignores the base seed")
	}
}

func TestParseKind(t *testing.T) {
	cases := []struct {
		name string
		want Kind
		ok   bool
	}{
		{"xorshift", KindXorshift, true},
		{"marsaglia", KindXorshift, true},
		{"xorshift64", KindXorshift, true},
		{"xorshift32", KindXorshift32, true},
		{"lehmer", KindLehmer, true},
		{"parkmiller", KindLehmer, true},
		{"minstd", KindLehmer, true},
		{"splitmix", KindSplitMix, true},
		{"splitmix64", KindSplitMix, true},
		{"mersenne", KindXorshift, false},
		{"", KindXorshift, false},
	}
	for _, c := range cases {
		got, ok := ParseKind(c.name)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseKind(%q) = (%v, %v), want (%v, %v)", c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindXorshift:   "xorshift64",
		KindXorshift32: "xorshift32",
		KindLehmer:     "lehmer",
		KindSplitMix:   "splitmix64",
		Kind(0):        "unknown",
		Kind(99):       "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

// Property: Intn output is always within bounds for arbitrary seeds and
// bounds, for every generator family.
func TestQuickIntnBounds(t *testing.T) {
	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			prop := func(seed uint64, boundRaw uint16) bool {
				bound := int(boundRaw%4096) + 1
				src := New(kind, seed)
				for i := 0; i < 32; i++ {
					v := src.Intn(bound)
					if v < 0 || v >= bound {
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: the empirical mean of Intn(n) over many draws is near (n-1)/2.
func TestMeanOfIntn(t *testing.T) {
	const bound = 1000
	const draws = 200000
	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			src := New(kind, 31337)
			var sum float64
			for i := 0; i < draws; i++ {
				sum += float64(src.Intn(bound))
			}
			mean := sum / draws
			want := float64(bound-1) / 2
			if math.Abs(mean-want) > 5 {
				t.Fatalf("mean %.2f too far from %.2f", mean, want)
			}
		})
	}
}

func BenchmarkUint64(b *testing.B) {
	for _, kind := range allKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			src := New(kind, 1)
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink ^= src.Uint64()
			}
			_ = sink
		})
	}
}

func BenchmarkIntn(b *testing.B) {
	for _, kind := range allKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			src := New(kind, 1)
			var sink int
			for i := 0; i < b.N; i++ {
				sink ^= src.Intn(1500)
			}
			_ = sink
		})
	}
}
