package rng

// Xorshift is the Marsaglia xorshift64* generator. The paper's benchmark
// implementation uses a Marsaglia generator for the per-probe random slot
// choices; xorshift64* is the standard 64-bit member of that family with good
// statistical quality and a single word of state.
type Xorshift struct {
	state uint64
}

var _ Source = (*Xorshift)(nil)

// NewXorshift returns a Marsaglia xorshift64* generator seeded with seed.
// A zero seed is remapped to a fixed non-zero constant because the all-zero
// state is a fixed point of the xorshift recurrence.
func NewXorshift(seed uint64) *Xorshift {
	x := &Xorshift{}
	x.Seed(seed)
	return x
}

// Seed re-seeds the generator.
func (x *Xorshift) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15 // golden-ratio constant; any non-zero value works
	}
	x.state = seed
}

// Uint64 advances the generator and returns the next 64-bit value.
func (x *Xorshift) Uint64() uint64 {
	s := x.state
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	x.state = s
	return s * 0x2545F4914F6CDD1D
}

// Intn returns a uniformly distributed integer in [0, n).
func (x *Xorshift) Intn(n int) int {
	return intn(x.Uint64, n)
}

// Xorshift32 is the classic 32-bit Marsaglia xorshift generator (13/17/5
// triple). It is retained because the paper's original C benchmark used a
// 32-bit Marsaglia generator; the reproduction exposes it so the PRNG
// sensitivity claim ("we found no difference between the results") can be
// re-validated with a generator of the same width.
type Xorshift32 struct {
	state uint32
}

var _ Source = (*Xorshift32)(nil)

// NewXorshift32 returns a 32-bit Marsaglia xorshift generator seeded with seed.
func NewXorshift32(seed uint64) *Xorshift32 {
	x := &Xorshift32{}
	x.Seed(seed)
	return x
}

// Seed re-seeds the generator, folding the 64-bit seed into 32 bits and
// remapping zero to a non-zero constant.
func (x *Xorshift32) Seed(seed uint64) {
	folded := uint32(seed) ^ uint32(seed>>32)
	if folded == 0 {
		folded = 0x9E3779B9
	}
	x.state = folded
}

// next advances the 32-bit state once.
func (x *Xorshift32) next() uint32 {
	s := x.state
	s ^= s << 13
	s ^= s >> 17
	s ^= s << 5
	x.state = s
	return s
}

// Uint64 returns the next 64 bits by concatenating two 32-bit outputs.
func (x *Xorshift32) Uint64() uint64 {
	hi := uint64(x.next())
	lo := uint64(x.next())
	return hi<<32 | lo
}

// Intn returns a uniformly distributed integer in [0, n).
func (x *Xorshift32) Intn(n int) int {
	return intn(x.Uint64, n)
}
