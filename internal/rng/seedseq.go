package rng

import "sync"

// SeedSequence hands out decorrelated seeds derived from a single base seed.
// Array implementations use one sequence per array so that every handle gets
// an independent generator stream even when handles are created concurrently;
// the sequence is therefore safe for concurrent use.
type SeedSequence struct {
	mu  sync.Mutex
	src *SplitMix64
}

// NewSeedSequence returns a seed sequence rooted at base.
func NewSeedSequence(base uint64) *SeedSequence {
	return &SeedSequence{src: NewSplitMix64(base)}
}

// Next returns the next seed in the sequence.
func (s *SeedSequence) Next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Uint64()
}
