// Package rng provides the pseudo-random number generators used by the
// LevelArray reproduction.
//
// The paper's implementation section reports using the Marsaglia (xorshift)
// and Park-Miller (Lehmer / MINSTD) generators interchangeably and finding no
// difference in the results. Both are implemented here, together with a
// SplitMix64 generator that is used exclusively to derive well-separated
// per-thread seeds from a single benchmark seed.
//
// All generators in this package are deterministic, seedable, and NOT safe for
// concurrent use; callers own one generator per goroutine or per simulated
// process. This mirrors the paper's model in which every process has a local
// random number generator accessible through random(1, v).
package rng

import "fmt"

// Source is the minimal interface shared by all generators in this package.
// It intentionally mirrors the shape of math/rand.Source64 so generators can
// be adapted where needed, but adds Intn and Range helpers that correspond to
// the paper's random(1, v) primitive.
type Source interface {
	// Uint64 returns the next 64 bits from the generator.
	Uint64() uint64

	// Intn returns a uniformly distributed integer in [0, n). It panics if
	// n <= 0.
	Intn(n int) int

	// Seed re-seeds the generator. A zero seed is remapped internally by
	// generators that cannot accept it.
	Seed(seed uint64)
}

// Range returns a uniformly distributed integer in [lo, hi] drawn from src.
// It corresponds to the paper's random(lo, hi) call. It panics if hi < lo.
func Range(src Source, lo, hi int) int {
	if hi < lo {
		panic(fmt.Sprintf("rng: invalid range [%d, %d]", lo, hi))
	}
	return lo + src.Intn(hi-lo+1)
}

// intn implements a bias-free bounded draw on top of a Uint64 stream using
// rejection sampling.
func intn(next func() uint64, n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn called with non-positive bound %d", n))
	}
	bound := uint64(n)
	// Fast path for powers of two: mask directly.
	if bound&(bound-1) == 0 {
		return int(next() & (bound - 1))
	}
	// Accept draws in [0, k*bound) where k = floor(2^64 / bound); everything
	// above is rejected so every residue is equally likely. The rejection
	// probability is below bound/2^64, i.e. negligible for the bounds used
	// here (array sizes of at most a few million).
	maxAccept := ^uint64(0) - (^uint64(0)%bound+1)%bound
	for {
		v := next()
		if v <= maxAccept {
			return int(v % bound)
		}
	}
}
