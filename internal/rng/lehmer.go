package rng

// Lehmer is the Park-Miller "minimal standard" multiplicative linear
// congruential generator (MINSTD): x_{k+1} = 16807 * x_k mod (2^31 - 1).
// The paper's implementation section lists it as the second generator used in
// the benchmarks. State is a value in [1, 2^31-2].
type Lehmer struct {
	state uint64
}

var _ Source = (*Lehmer)(nil)

const (
	lehmerModulus    = 1<<31 - 1 // 2147483647, a Mersenne prime
	lehmerMultiplier = 16807     // 7^5, the original Park-Miller multiplier
)

// NewLehmer returns a Park-Miller MINSTD generator seeded with seed.
func NewLehmer(seed uint64) *Lehmer {
	l := &Lehmer{}
	l.Seed(seed)
	return l
}

// Seed re-seeds the generator. The seed is reduced into the valid state range
// [1, modulus-1]; zero (which would make the sequence degenerate) is remapped.
func (l *Lehmer) Seed(seed uint64) {
	s := seed % lehmerModulus
	if s == 0 {
		s = 1
	}
	l.state = s
}

// next advances the recurrence once and returns a value in [1, modulus-1],
// i.e. slightly fewer than 31 random bits.
func (l *Lehmer) next() uint64 {
	l.state = l.state * lehmerMultiplier % lehmerModulus
	return l.state
}

// Uint64 assembles 64 output bits from three successive 31-bit draws. The
// small bias introduced by the state never being zero is irrelevant for the
// probe-choice workloads this generator feeds.
func (l *Lehmer) Uint64() uint64 {
	a := l.next()
	b := l.next()
	c := l.next()
	return a<<33 ^ b<<11 ^ c
}

// Intn returns a uniformly distributed integer in [0, n).
func (l *Lehmer) Intn(n int) int {
	return intn(l.Uint64, n)
}
