// Package arraytest provides a reusable conformance suite for
// activity.Array implementations. Both the LevelArray and every comparator
// algorithm run the same suite, which checks the long-lived renaming
// contract: handle discipline, name uniqueness under sequential and
// concurrent use, Collect validity, namespace bounds, and probe accounting.
package arraytest

import (
	"math/bits"
	"sync"
	"testing"

	"github.com/levelarray/levelarray/internal/activity"
)

// Factory builds a fresh array with the given capacity for one subtest.
type Factory func(capacity int) activity.Array

// Run executes the full conformance suite against arrays built by factory.
func Run(t *testing.T, factory Factory) {
	t.Helper()
	t.Run("HandleDiscipline", func(t *testing.T) { testHandleDiscipline(t, factory) })
	t.Run("SequentialUniqueness", func(t *testing.T) { testSequentialUniqueness(t, factory) })
	t.Run("ReuseAfterFree", func(t *testing.T) { testReuseAfterFree(t, factory) })
	t.Run("CollectValidity", func(t *testing.T) { testCollectValidity(t, factory) })
	t.Run("NamespaceBound", func(t *testing.T) { testNamespaceBound(t, factory) })
	t.Run("ProbeAccounting", func(t *testing.T) { testProbeAccounting(t, factory) })
	t.Run("ConcurrentUniqueness", func(t *testing.T) { testConcurrentUniqueness(t, factory) })
	t.Run("ConcurrentChurn", func(t *testing.T) { testConcurrentChurn(t, factory) })
	t.Run("CollectDuringChurn", func(t *testing.T) { testCollectDuringChurn(t, factory) })
}

func testHandleDiscipline(t *testing.T, factory Factory) {
	arr := factory(8)
	h := arr.Handle()

	if _, held := h.Name(); held {
		t.Fatal("fresh handle reports a held name")
	}
	if err := h.Free(); err != activity.ErrNotRegistered {
		t.Fatalf("Free before Get: err = %v, want ErrNotRegistered", err)
	}

	name, err := h.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got, held := h.Name(); !held || got != name {
		t.Fatalf("Name() = (%d, %v), want (%d, true)", got, held, name)
	}
	if _, err := h.Get(); err != activity.ErrAlreadyRegistered {
		t.Fatalf("second Get: err = %v, want ErrAlreadyRegistered", err)
	}

	if err := h.Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if _, held := h.Name(); held {
		t.Fatal("handle still reports a held name after Free")
	}
	if err := h.Free(); err != activity.ErrNotRegistered {
		t.Fatalf("double Free: err = %v, want ErrNotRegistered", err)
	}
}

func testSequentialUniqueness(t *testing.T, factory Factory) {
	const capacity = 32
	arr := factory(capacity)
	if arr.Capacity() != capacity {
		t.Fatalf("Capacity() = %d, want %d", arr.Capacity(), capacity)
	}

	handles := make([]activity.Handle, capacity)
	names := make(map[int]int)
	for i := range handles {
		handles[i] = arr.Handle()
		name, err := handles[i].Get()
		if err != nil {
			t.Fatalf("Get for handle %d: %v", i, err)
		}
		if name < 0 || name >= arr.Size() {
			t.Fatalf("name %d outside namespace [0, %d)", name, arr.Size())
		}
		if prev, dup := names[name]; dup {
			t.Fatalf("name %d issued to both handle %d and handle %d", name, prev, i)
		}
		names[name] = i
	}
	for i := range handles {
		if err := handles[i].Free(); err != nil {
			t.Fatalf("Free for handle %d: %v", i, err)
		}
	}
}

func testReuseAfterFree(t *testing.T, factory Factory) {
	arr := factory(4)
	h := arr.Handle()
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		name, err := h.Get()
		if err != nil {
			t.Fatalf("iteration %d: Get: %v", i, err)
		}
		seen[name] = true
		if err := h.Free(); err != nil {
			t.Fatalf("iteration %d: Free: %v", i, err)
		}
	}
	if len(seen) > arr.Size() {
		t.Fatalf("observed %d distinct names, namespace is %d", len(seen), arr.Size())
	}
	// With the array otherwise empty, the collect after the loop must be
	// empty as well.
	if got := arr.Collect(nil); len(got) != 0 {
		t.Fatalf("Collect after all Frees returned %v", got)
	}
}

func testCollectValidity(t *testing.T, factory Factory) {
	const capacity = 16
	arr := factory(capacity)
	handles := make([]activity.Handle, capacity)
	held := make(map[int]bool)
	for i := range handles {
		handles[i] = arr.Handle()
		name, err := handles[i].Get()
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		held[name] = true
	}

	collected := arr.Collect(nil)
	if len(collected) != capacity {
		t.Fatalf("Collect returned %d names, want %d", len(collected), capacity)
	}
	seen := make(map[int]bool)
	for _, name := range collected {
		if !held[name] {
			t.Fatalf("Collect returned name %d that is not held", name)
		}
		if seen[name] {
			t.Fatalf("Collect returned duplicate name %d", name)
		}
		seen[name] = true
	}

	// Free half the handles; a fresh Collect must not report their names.
	for i := 0; i < capacity/2; i++ {
		name, _ := handles[i].Name()
		delete(held, name)
		if err := handles[i].Free(); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
	collected = arr.Collect(nil)
	if len(collected) != capacity/2 {
		t.Fatalf("Collect after frees returned %d names, want %d", len(collected), capacity/2)
	}
	for _, name := range collected {
		if !held[name] {
			t.Fatalf("Collect returned freed name %d", name)
		}
	}

	// Collect must append to the destination slice it is given.
	prefix := []int{-1}
	extended := arr.Collect(prefix)
	if len(extended) != 1+capacity/2 || extended[0] != -1 {
		t.Fatalf("Collect did not append to dst: %v", extended)
	}

	for i := capacity / 2; i < capacity; i++ {
		if err := handles[i].Free(); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
}

func testNamespaceBound(t *testing.T, factory Factory) {
	// The paper's space bound: the namespace is linear in n. The LevelArray
	// uses at most 2n main slots plus an n-slot backup; comparators use a
	// 2n array. Allow 3n+1, plus the word-alignment slack of the bitmap
	// substrate's batch layout (at most one 64-slot word per word-sized
	// batch, i.e. O(64 log n) — see balance.Layout.PaddingSlots).
	for _, capacity := range []int{1, 2, 5, 16, 33, 100, 300, 1000} {
		arr := factory(capacity)
		alignSlack := 64 * bits.Len(uint(capacity))
		if arr.Size() > 3*capacity+1+alignSlack {
			t.Fatalf("capacity %d: namespace %d exceeds 3n+1 plus alignment slack %d",
				capacity, arr.Size(), alignSlack)
		}
		if arr.Size() < capacity {
			t.Fatalf("capacity %d: namespace %d smaller than n", capacity, arr.Size())
		}
	}
}

func testProbeAccounting(t *testing.T, factory Factory) {
	arr := factory(16)
	h := arr.Handle()
	const rounds = 50
	for i := 0; i < rounds; i++ {
		if _, err := h.Get(); err != nil {
			t.Fatalf("Get: %v", err)
		}
		if h.LastProbes() < 1 {
			t.Fatalf("LastProbes = %d after a successful Get", h.LastProbes())
		}
		if err := h.Free(); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
	s := h.Stats()
	if s.Ops != rounds {
		t.Fatalf("Stats.Ops = %d, want %d", s.Ops, rounds)
	}
	if s.Frees != rounds {
		t.Fatalf("Stats.Frees = %d, want %d", s.Frees, rounds)
	}
	if s.TotalProbes < rounds {
		t.Fatalf("Stats.TotalProbes = %d, want at least %d", s.TotalProbes, rounds)
	}
	if s.MaxProbes < 1 || s.Mean() < 1 {
		t.Fatalf("probe statistics inconsistent: %+v", s)
	}
	if uint64(s.MaxProbes) > s.TotalProbes {
		t.Fatalf("MaxProbes %d exceeds TotalProbes %d", s.MaxProbes, s.TotalProbes)
	}
}

func testConcurrentUniqueness(t *testing.T, factory Factory) {
	const capacity = 64
	arr := factory(capacity)

	names := make([]int, capacity)
	var wg sync.WaitGroup
	for i := 0; i < capacity; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := arr.Handle()
			name, err := h.Get()
			if err != nil {
				t.Errorf("worker %d: Get: %v", i, err)
				return
			}
			names[i] = name
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	seen := make(map[int]int)
	for i, name := range names {
		if prev, dup := seen[name]; dup {
			t.Fatalf("name %d issued to both worker %d and worker %d", name, prev, i)
		}
		seen[name] = i
	}
}

func testConcurrentChurn(t *testing.T, factory Factory) {
	const (
		capacity   = 32
		iterations = 400
	)
	arr := factory(capacity)
	var wg sync.WaitGroup
	for w := 0; w < capacity; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := arr.Handle()
			for i := 0; i < iterations; i++ {
				name, err := h.Get()
				if err != nil {
					t.Errorf("worker %d iteration %d: Get: %v", w, i, err)
					return
				}
				if name < 0 || name >= arr.Size() {
					t.Errorf("worker %d: name %d out of range", w, name)
					return
				}
				if err := h.Free(); err != nil {
					t.Errorf("worker %d iteration %d: Free: %v", w, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := arr.Collect(nil); len(got) != 0 {
		t.Fatalf("Collect after churn returned %v, want empty", got)
	}
}

func testCollectDuringChurn(t *testing.T, factory Factory) {
	const (
		capacity   = 16
		iterations = 300
		collectors = 2
	)
	arr := factory(capacity)
	var workers, scanners sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < capacity/2; w++ {
		w := w
		workers.Add(1)
		go func() {
			defer workers.Done()
			h := arr.Handle()
			for i := 0; i < iterations; i++ {
				if _, err := h.Get(); err != nil {
					t.Errorf("worker %d: Get: %v", w, err)
					return
				}
				if err := h.Free(); err != nil {
					t.Errorf("worker %d: Free: %v", w, err)
					return
				}
			}
		}()
	}

	for c := 0; c < collectors; c++ {
		scanners.Add(1)
		go func() {
			defer scanners.Done()
			buf := make([]int, 0, arr.Size())
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = arr.Collect(buf[:0])
				// Validity here means every name is inside the namespace and
				// there are never more names than could legally be held.
				if len(buf) > capacity {
					t.Errorf("Collect returned %d names with only %d workers registered",
						len(buf), capacity)
					return
				}
				for _, name := range buf {
					if name < 0 || name >= arr.Size() {
						t.Errorf("Collect returned out-of-range name %d", name)
						return
					}
				}
			}
		}()
	}

	workers.Wait()
	close(stop)
	scanners.Wait()
}
