package activity

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestProbeStatsRecord(t *testing.T) {
	var s ProbeStats
	s.Record(1, false)
	s.Record(3, false)
	s.Record(2, true)
	s.RecordFree()
	s.RecordFree()

	if s.Ops != 3 {
		t.Fatalf("Ops = %d, want 3", s.Ops)
	}
	if s.TotalProbes != 6 {
		t.Fatalf("TotalProbes = %d, want 6", s.TotalProbes)
	}
	if s.SumSquares != 1+9+4 {
		t.Fatalf("SumSquares = %d, want 14", s.SumSquares)
	}
	if s.MaxProbes != 3 {
		t.Fatalf("MaxProbes = %d, want 3", s.MaxProbes)
	}
	if s.BackupOps != 1 {
		t.Fatalf("BackupOps = %d, want 1", s.BackupOps)
	}
	if s.Frees != 2 {
		t.Fatalf("Frees = %d, want 2", s.Frees)
	}
	if got, want := s.Mean(), 2.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	// Population variance of {1,3,2} is 2/3.
	if got, want := s.Variance(), 2.0/3.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if got, want := s.StdDev(), math.Sqrt(2.0/3.0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
}

func TestProbeStatsEmpty(t *testing.T) {
	var s ProbeStats
	if s.Mean() != 0 || s.Variance() != 0 || s.StdDev() != 0 {
		t.Fatalf("empty stats should report zeros, got %+v", s)
	}
}

func TestProbeStatsMerge(t *testing.T) {
	var a, b, whole ProbeStats
	samplesA := []int{1, 2, 5}
	samplesB := []int{3, 3, 1, 7}
	for _, p := range samplesA {
		a.Record(p, false)
		whole.Record(p, false)
	}
	for _, p := range samplesB {
		b.Record(p, p == 7)
		whole.Record(p, p == 7)
	}
	a.RecordFree()
	whole.RecordFree()

	merged := a
	merged.Merge(b)
	if merged != whole {
		t.Fatalf("merged = %+v, want %+v", merged, whole)
	}
}

func TestProbeStatsString(t *testing.T) {
	var s ProbeStats
	s.Record(2, false)
	out := s.String()
	for _, field := range []string{"ops=1", "avg=2.000", "max=2", "frees=0"} {
		if !strings.Contains(out, field) {
			t.Fatalf("String() = %q missing %q", out, field)
		}
	}
}

// Property: merging statistics in either order gives the same totals as
// recording all samples into a single accumulator.
func TestQuickMergeAssociativity(t *testing.T) {
	prop := func(rawA, rawB []uint8) bool {
		var a, b, ba, whole ProbeStats
		for _, p := range rawA {
			probes := int(p%16) + 1
			a.Record(probes, p%7 == 0)
			whole.Record(probes, p%7 == 0)
		}
		for _, p := range rawB {
			probes := int(p%16) + 1
			b.Record(probes, p%7 == 0)
			whole.Record(probes, p%7 == 0)
		}
		ab := a
		ab.Merge(b)
		ba = b
		ba.Merge(a)
		return ab == whole && ba == whole
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: MaxProbes is always at least the mean, and the standard deviation
// is non-negative.
func TestQuickStatsSanity(t *testing.T) {
	prop := func(raw []uint8) bool {
		var s ProbeStats
		for _, p := range raw {
			s.Record(int(p%32)+1, false)
		}
		if s.Ops == 0 {
			return s.Mean() == 0 && s.StdDev() == 0
		}
		return float64(s.MaxProbes) >= s.Mean() && s.StdDev() >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorsAreDistinct(t *testing.T) {
	errs := []error{ErrAlreadyRegistered, ErrNotRegistered, ErrFull}
	for i := range errs {
		for j := range errs {
			if i != j && errs[i] == errs[j] {
				t.Fatalf("errors %d and %d are identical", i, j)
			}
		}
	}
	for _, err := range errs {
		if err.Error() == "" {
			t.Fatal("error with empty message")
		}
	}
}

func TestProbeStatsSteals(t *testing.T) {
	var s ProbeStats
	s.Record(3, false)
	s.RecordSteal()
	s.RecordSteal()
	if s.Steals != 2 {
		t.Fatalf("Steals = %d, want 2", s.Steals)
	}
	var other ProbeStats
	other.RecordSteal()
	s.Merge(other)
	if s.Steals != 3 {
		t.Fatalf("Steals after Merge = %d, want 3", s.Steals)
	}
	if out := s.String(); !strings.Contains(out, "steals=3") {
		t.Fatalf("String() = %q missing steals=3", out)
	}
	var clean ProbeStats
	clean.Record(1, false)
	if out := clean.String(); strings.Contains(out, "steals") {
		t.Fatalf("String() = %q mentions steals with none recorded", out)
	}
}
