// Package activity defines the activity-array abstraction shared by the
// LevelArray and every comparator algorithm in this repository.
//
// An activity array (the paper's formalization of long-lived renaming /
// dynamic collect) exports three operations:
//
//   - Get registers the caller and returns a unique index ("name");
//   - Free releases the index returned by the caller's most recent Get;
//   - Collect returns the set of indices currently held, with the validity
//     guarantee that every returned index was held by some process at some
//     point during the Collect.
//
// The package also defines the probe-reporting types used by the benchmark
// harness: the paper's headline metric is the number of test-and-set trials
// ("probes") per Get, which the algorithms report per operation so the
// harness can compute averages, standard deviations and worst cases exactly
// as in Figure 2.
package activity

import (
	"errors"
	"fmt"
	"math"
)

// Array is the long-lived renaming / dynamic collect interface.
//
// Implementations must be safe for concurrent use by multiple goroutines:
// Get and Free are linearizable, and Collect satisfies the validity property
// described in the package comment (it is not an atomic snapshot).
//
// The Get/Free discipline is per handle: a caller obtains a Handle once and
// then alternates Get and Free on it, starting with Get, exactly as the
// paper's well-formed inputs require.
type Array interface {
	// Capacity returns n, the maximum number of simultaneously registered
	// handles the array was configured for.
	Capacity() int

	// Size returns the total number of slots (the namespace size), e.g. 2n
	// for the LevelArray main array.
	Size() int

	// Handle returns a per-participant accessor. Handles are not safe for
	// concurrent use; each goroutine or simulated process owns its handle.
	Handle() Handle

	// Collect appends the indices currently observed as held to dst and
	// returns the extended slice. Passing a reused dst avoids allocation in
	// steady state. The result is valid in the paper's sense but is not an
	// atomic snapshot.
	Collect(dst []int) []int
}

// Handle is the per-participant mutable endpoint of an Array.
//
// A Handle holds at most one name at a time. Get after Get (without an
// intervening Free) and Free without a held name are usage errors and return
// ErrAlreadyRegistered and ErrNotRegistered respectively.
type Handle interface {
	// Get registers the participant and returns the acquired index.
	Get() (int, error)

	// Free releases the index returned by the most recent Get.
	Free() error

	// Name returns the currently held index and true, or 0 and false if the
	// participant is not registered.
	Name() (int, bool)

	// LastProbes returns the number of test-and-set trials performed by the
	// most recent Get. It reports 0 before the first Get.
	LastProbes() int

	// Stats returns the cumulative probe statistics of this handle.
	Stats() ProbeStats
}

// Identified is implemented by handles that expose a stable identity: an
// identifier assigned once at Handle() time and never reused for another
// handle of the same array. The lease manager folds it into its fencing
// tokens so a token records which pooled handle holds the slot, and tests
// use it to assert handle reuse.
type Identified interface {
	// ID returns the handle's stable identifier. IDs start at 1; 0 is never
	// issued, so it can serve as a sentinel.
	ID() uint64
}

// Usage and capacity errors returned by Array implementations.
var (
	// ErrAlreadyRegistered is returned by Get when the handle already holds
	// a name.
	ErrAlreadyRegistered = errors.New("activity: handle already holds a name")

	// ErrNotRegistered is returned by Free when the handle holds no name.
	ErrNotRegistered = errors.New("activity: handle holds no name")

	// ErrFull is returned by Get when no free slot could be found. For the
	// LevelArray this can only happen when more than Capacity participants
	// hold names simultaneously, which is outside the model's contract.
	ErrFull = errors.New("activity: no free slot available")
)

// ProbeStats accumulates per-operation probe counts. It is the unit of
// measurement behind every panel of Figure 2: Ops and TotalProbes yield the
// average number of trials, SumSquares yields the standard deviation, and
// MaxProbes is the worst case.
type ProbeStats struct {
	// Ops is the number of completed Get operations.
	Ops uint64
	// TotalProbes is the total number of test-and-set trials across all Gets.
	TotalProbes uint64
	// SumSquares is the sum of squared per-operation probe counts.
	SumSquares uint64
	// MaxProbes is the largest number of trials any single Get performed.
	MaxProbes uint64
	// BackupOps counts Gets that had to resort to the backup array (or, for
	// comparator algorithms without a backup, Gets that scanned the entire
	// array at least once). Failed Gets that swept the backup count too.
	BackupOps uint64
	// FailedOps is the number of Gets that returned ErrFull after exhausting
	// the namespace. Their probes are included in TotalProbes, SumSquares and
	// MaxProbes (a failed Get swept the whole array, which is exactly the
	// cost the harness must not undercount), but not in Ops.
	FailedOps uint64
	// Steals is the number of Gets satisfied by a shard other than the
	// caller's home shard. Single-array algorithms leave it zero; the
	// sharded composition records one steal per cross-shard registration.
	Steals uint64
	// Frees is the number of completed Free operations.
	Frees uint64
}

// Record folds one completed Get that used probes trials (and possibly the
// backup path) into the statistics.
func (s *ProbeStats) Record(probes int, usedBackup bool) {
	p := uint64(probes)
	s.Ops++
	s.TotalProbes += p
	s.SumSquares += p * p
	if p > s.MaxProbes {
		s.MaxProbes = p
	}
	if usedBackup {
		s.BackupOps++
	}
}

// RecordFailure folds one failed Get (ErrFull) that used probes trials into
// the statistics. The probes count towards the totals and the worst case but
// the operation is tallied under FailedOps, not Ops; it also counts as a
// backup operation, since a Get can only fail after sweeping the backup.
func (s *ProbeStats) RecordFailure(probes int) {
	p := uint64(probes)
	s.FailedOps++
	s.TotalProbes += p
	s.SumSquares += p * p
	if p > s.MaxProbes {
		s.MaxProbes = p
	}
	s.BackupOps++
}

// RecordSteal folds one cross-shard registration into the statistics. The
// operation itself is recorded separately via Record; RecordSteal only tags
// it as satisfied away from the caller's home shard.
func (s *ProbeStats) RecordSteal() {
	s.Steals++
}

// RecordFree folds one completed Free into the statistics.
func (s *ProbeStats) RecordFree() {
	s.Frees++
}

// Merge adds other into s. It is used by the harness to aggregate per-thread
// statistics into a per-run total.
func (s *ProbeStats) Merge(other ProbeStats) {
	s.Ops += other.Ops
	s.TotalProbes += other.TotalProbes
	s.SumSquares += other.SumSquares
	if other.MaxProbes > s.MaxProbes {
		s.MaxProbes = other.MaxProbes
	}
	s.BackupOps += other.BackupOps
	s.FailedOps += other.FailedOps
	s.Steals += other.Steals
	s.Frees += other.Frees
}

// Attempts returns the number of Get attempts, successful or not.
func (s ProbeStats) Attempts() uint64 { return s.Ops + s.FailedOps }

// Mean returns the average number of probes per Get attempt (failed Gets
// included), or 0 if no Gets were attempted.
func (s ProbeStats) Mean() float64 {
	if s.Attempts() == 0 {
		return 0
	}
	return float64(s.TotalProbes) / float64(s.Attempts())
}

// Variance returns the population variance of the per-attempt probe count,
// or 0 if no Gets were attempted.
func (s ProbeStats) Variance() float64 {
	if s.Attempts() == 0 {
		return 0
	}
	mean := s.Mean()
	return float64(s.SumSquares)/float64(s.Attempts()) - mean*mean
}

// StdDev returns the population standard deviation of the per-operation probe
// count.
func (s ProbeStats) StdDev() float64 {
	v := s.Variance()
	if v < 0 {
		// Guard against tiny negative values from floating-point cancellation.
		return 0
	}
	return math.Sqrt(v)
}

// String renders the statistics in a compact human-readable form.
func (s ProbeStats) String() string {
	out := fmt.Sprintf("ops=%d avg=%.3f stddev=%.3f max=%d backup=%d frees=%d",
		s.Ops, s.Mean(), s.StdDev(), s.MaxProbes, s.BackupOps, s.Frees)
	if s.FailedOps > 0 {
		out += fmt.Sprintf(" failed=%d", s.FailedOps)
	}
	if s.Steals > 0 {
		out += fmt.Sprintf(" steals=%d", s.Steals)
	}
	return out
}
