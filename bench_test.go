// Benchmarks regenerating the paper's evaluation (Section 6). There is one
// benchmark (or benchmark family) per figure panel and per in-text claim; the
// mapping to the paper is listed in EXPERIMENTS.md. The cmd/bench* drivers
// produce the full tables; these testing.B benchmarks produce the same
// quantities as per-op metrics so they can be tracked with `go test -bench`.
//
// Custom metrics reported:
//
//	probes/Get    average number of test-and-set trials per registration
//	              (Figure 2b)
//	probes-stddev standard deviation of trials per registration (Figure 2c)
//	worst-probes  worst-case trials observed by any single registration
//	              (Figure 2d)
//	ns/op         inverse throughput (Figure 2a)
package levelarray_test

import (
	"fmt"
	"net"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/adversary"
	"github.com/levelarray/levelarray/internal/cluster"
	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/experiments"
	"github.com/levelarray/levelarray/internal/lease"
	"github.com/levelarray/levelarray/internal/registry"
	"github.com/levelarray/levelarray/internal/sched"
	"github.com/levelarray/levelarray/internal/server"
	"github.com/levelarray/levelarray/internal/shard"
	"github.com/levelarray/levelarray/internal/trace"
	"github.com/levelarray/levelarray/internal/wire"
)

// prefillArray registers `count` resident handles that stay registered for
// the whole benchmark, establishing the paper's pre-fill load.
func prefillArray(b *testing.B, arr activity.Array, count int) {
	b.Helper()
	for i := 0; i < count; i++ {
		if _, err := arr.Handle().Get(); err != nil {
			b.Fatalf("pre-fill registration %d: %v", i, err)
		}
	}
}

// fig2Bench builds the benchmark closure for one algorithm of Figure 2: the
// paper's register/deregister churn at 50% pre-fill on an L = 2N array under
// RunParallel, reporting the probe metrics.
func fig2Bench(algo registry.Algorithm) func(b *testing.B) {
	return func(b *testing.B) {
		// The paper's configuration: N = 1000·n emulated registrations,
		// L = 2N slots, 50% pre-fill. n is the benchmark's parallelism.
		const emulationFactor = 1000
		capacity := runtime.GOMAXPROCS(0) * emulationFactor
		arr := registry.MustNew(algo, registry.Options{Capacity: capacity, Seed: 7})
		prefillArray(b, arr, capacity/2)

		var (
			mu     sync.Mutex
			merged activity.ProbeStats
		)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			h := arr.Handle()
			for pb.Next() {
				if _, err := h.Get(); err != nil {
					b.Errorf("Get: %v", err)
					return
				}
				if err := h.Free(); err != nil {
					b.Errorf("Free: %v", err)
					return
				}
			}
			mu.Lock()
			merged.Merge(h.Stats())
			mu.Unlock()
		})
		b.StopTimer()
		reportProbeMetrics(b, merged)
	}
}

// reportProbeMetrics attaches the Figure 2 panel quantities to the benchmark.
func reportProbeMetrics(b *testing.B, s activity.ProbeStats) {
	b.Helper()
	if s.Ops == 0 {
		return
	}
	b.ReportMetric(s.Mean(), "probes/Get")
	b.ReportMetric(s.StdDev(), "probes-stddev")
	b.ReportMetric(float64(s.MaxProbes), "worst-probes")
}

// BenchmarkFig2 reproduces Figure 2 (all four panels) at the current
// GOMAXPROCS as the thread count: ns/op is the throughput panel, and the
// custom metrics are the average, standard deviation and worst-case panels.
// Sweep thread counts externally with -cpu 1,2,4,... to regenerate the x-axis.
func BenchmarkFig2(b *testing.B) {
	for _, algo := range registry.Randomized() {
		b.Run(algo.String(), fig2Bench(algo))
	}
}

// BenchmarkFig2Deterministic adds the deterministic left-to-right scan, which
// the paper excludes from Figure 2 because its average cost is at least two
// orders of magnitude higher; it is run at a reduced emulation factor so the
// benchmark completes quickly.
func BenchmarkFig2Deterministic(b *testing.B) {
	const emulationFactor = 50
	capacity := runtime.GOMAXPROCS(0) * emulationFactor
	arr := registry.MustNew(registry.Deterministic, registry.Options{Capacity: capacity, Seed: 7})
	prefillArray(b, arr, capacity/2)
	var (
		mu     sync.Mutex
		merged activity.ProbeStats
	)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		h := arr.Handle()
		for pb.Next() {
			if _, err := h.Get(); err != nil {
				b.Errorf("Get: %v", err)
				return
			}
			if err := h.Free(); err != nil {
				b.Errorf("Free: %v", err)
				return
			}
		}
		mu.Lock()
		merged.Merge(h.Stats())
		mu.Unlock()
	})
	b.StopTimer()
	reportProbeMetrics(b, merged)
}

// BenchmarkLongRunStability reproduces the in-text claim that the LevelArray
// sustains a ~1.75 average and a single-digit worst case over very long runs
// (the paper reports 0.2–2 billion operations; scale with -benchtime).
func BenchmarkLongRunStability(b *testing.B) {
	const capacity = 8 * 1000
	arr := core.MustNew(core.Config{Capacity: capacity, Seed: 11})
	prefillArray(b, arr, capacity/2)
	var (
		mu     sync.Mutex
		merged activity.ProbeStats
	)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		h := arr.Handle()
		for pb.Next() {
			if _, err := h.Get(); err != nil {
				b.Errorf("Get: %v", err)
				return
			}
			if err := h.Free(); err != nil {
				b.Errorf("Free: %v", err)
				return
			}
		}
		mu.Lock()
		merged.Merge(h.Stats())
		mu.Unlock()
	})
	b.StopTimer()
	reportProbeMetrics(b, merged)
	if merged.BackupOps > 0 {
		b.Errorf("backup array used %d times at 50%% load", merged.BackupOps)
	}
}

// BenchmarkPrefillSweep reproduces the in-text claim that the results are
// stable for pre-fill percentages between 0%% and 90%%.
func BenchmarkPrefillSweep(b *testing.B) {
	const capacity = 4 * 1000
	for _, prefillPercent := range []int{0, 50, 90} {
		prefillPercent := prefillPercent
		b.Run(fmt.Sprintf("prefill=%d", prefillPercent), func(b *testing.B) {
			arr := core.MustNew(core.Config{Capacity: capacity, Seed: 13})
			prefillArray(b, arr, capacity*prefillPercent/100)
			var (
				mu     sync.Mutex
				merged activity.ProbeStats
			)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				h := arr.Handle()
				for pb.Next() {
					if _, err := h.Get(); err != nil {
						b.Errorf("Get: %v", err)
						return
					}
					if err := h.Free(); err != nil {
						b.Errorf("Free: %v", err)
						return
					}
				}
				mu.Lock()
				merged.Merge(h.Stats())
				mu.Unlock()
			})
			b.StopTimer()
			reportProbeMetrics(b, merged)
		})
	}
}

// BenchmarkArraySizeSweep reproduces the in-text claim that behaviour is
// stable for array sizes L between 2N and 4N.
func BenchmarkArraySizeSweep(b *testing.B) {
	const capacity = 4 * 1000
	for _, factor := range []float64{2, 3, 4} {
		factor := factor
		b.Run(fmt.Sprintf("L=%.0fN", factor), func(b *testing.B) {
			arr := registry.MustNew(registry.LevelArray, registry.Options{
				Capacity:   capacity,
				SizeFactor: factor,
				Seed:       17,
			})
			prefillArray(b, arr, capacity/2)
			var (
				mu     sync.Mutex
				merged activity.ProbeStats
			)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				h := arr.Handle()
				for pb.Next() {
					if _, err := h.Get(); err != nil {
						b.Errorf("Get: %v", err)
						return
					}
					if err := h.Free(); err != nil {
						b.Errorf("Free: %v", err)
						return
					}
				}
				mu.Lock()
				merged.Merge(h.Stats())
				mu.Unlock()
			})
			b.StopTimer()
			reportProbeMetrics(b, merged)
		})
	}
}

// BenchmarkFig3Healing reproduces Figure 3: each iteration sets up the
// degraded initial state (batch 1 overcrowded) and runs churn until the
// damage is repaired, reporting how many operations that took.
func BenchmarkFig3Healing(b *testing.B) {
	var totalOpsToHeal, healedRuns float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3Healing(experiments.HealingConfig{
			Capacity:      2048,
			SnapshotEvery: 1000,
			Snapshots:     16,
			Seed:          uint64(i + 1),
		})
		if err != nil {
			b.Fatalf("Fig3Healing: %v", err)
		}
		if res.HealedAfter >= 0 {
			totalOpsToHeal += float64(res.Snapshots[res.HealedAfter].Step)
			healedRuns++
		}
	}
	if healedRuns > 0 {
		b.ReportMetric(totalOpsToHeal/healedRuns, "ops-to-heal")
	}
	b.ReportMetric(healedRuns/float64(b.N), "healed-fraction")
}

// BenchmarkLogLogScaling reproduces the Theorem 1 scaling experiment in the
// step-level simulator: the worst-case probe count as n grows (it should
// track log log n, i.e. stay in the single digits across this whole sweep).
func BenchmarkLogLogScaling(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var worst, mean float64
			for i := 0; i < b.N; i++ {
				sim := sched.MustNew(sched.Config{
					Capacity: n,
					Seed:     uint64(i + 1),
					Inputs: adversary.UniformInputs(n, adversary.InputSpec{
						Rounds:        4,
						CallsAfterGet: 1,
					}),
				})
				schedule := adversary.UniformRandom(n, uint64(i+1))
				if err := sim.RunUntilDone(schedule, uint64(n)*4*256); err != nil {
					b.Fatalf("simulation: %v", err)
				}
				stats := sim.MergedStats()
				if float64(stats.MaxProbes) > worst {
					worst = float64(stats.MaxProbes)
				}
				mean += stats.Mean()
			}
			b.ReportMetric(worst, "worst-probes")
			b.ReportMetric(mean/float64(b.N), "probes/Get")
		})
	}
}

// BenchmarkCollect measures the cost of the Collect scan (the paper's O(n)
// operation) at several capacities and 50% occupancy, on the default bitmap
// substrate (64 slots per atomic load).
func BenchmarkCollect(b *testing.B) {
	for _, n := range []int{1000, 10000, 80000} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			arr := core.MustNew(core.Config{Capacity: n, Seed: 23})
			prefillArray(b, arr, n/2)
			buf := make([]int, 0, arr.Size())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = arr.Collect(buf[:0])
			}
			b.StopTimer()
			if len(buf) != n/2 {
				b.Fatalf("Collect returned %d names, want %d", len(buf), n/2)
			}
		})
	}
}

// substrateKinds enumerates the slot layouts compared by the substrate
// benchmarks, in the order they should appear in reports.
func substrateKinds() []core.SpaceKind {
	return []core.SpaceKind{core.SpaceBitmap, core.SpaceBitmapPadded, core.SpacePadded, core.SpaceCompact}
}

// BenchmarkCollectSubstrates compares the Collect scan across slot layouts at
// n=4096 and 50% occupancy: the bitmap substrates scan 64 slots per atomic
// load while the unpacked layouts pay one atomic load per slot. This is the
// headline comparison for the word-packed substrate (the bitmap word-scan is
// expected to beat the per-slot CompactSpace scan by well over 4x).
func BenchmarkCollectSubstrates(b *testing.B) {
	const n = 4096
	for _, kind := range substrateKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			arr := core.MustNew(core.Config{Capacity: n, Seed: 23, Space: kind})
			prefillArray(b, arr, n/2)
			buf := make([]int, 0, arr.Size())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = arr.Collect(buf[:0])
			}
			b.StopTimer()
			if len(buf) != n/2 {
				b.Fatalf("Collect returned %d names, want %d", len(buf), n/2)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(arr.Size()), "ns/slot")
		})
	}
}

// BenchmarkGetFreeSubstrates compares the register/deregister churn across
// slot layouts under RunParallel at 50% pre-fill, exposing the contention
// trade-off of packing 64 slots into one CAS word: the dispatch-free bitmap
// path vs the interface-dispatch unpacked layouts.
func BenchmarkGetFreeSubstrates(b *testing.B) {
	const capacity = 4 * 1000
	for _, kind := range substrateKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			arr := core.MustNew(core.Config{Capacity: capacity, Seed: 43, Space: kind})
			prefillArray(b, arr, capacity/2)
			var (
				mu     sync.Mutex
				merged activity.ProbeStats
			)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				h := arr.Handle()
				for pb.Next() {
					if _, err := h.Get(); err != nil {
						b.Errorf("Get: %v", err)
						return
					}
					if err := h.Free(); err != nil {
						b.Errorf("Free: %v", err)
						return
					}
				}
				mu.Lock()
				merged.Merge(h.Stats())
				mu.Unlock()
			})
			b.StopTimer()
			reportProbeMetrics(b, merged)
		})
	}
}

// BenchmarkOccupancySubstrates compares the word-at-a-time occupancy count
// against the per-slot scan, the primitive behind the healing experiment's
// snapshots.
func BenchmarkOccupancySubstrates(b *testing.B) {
	const n = 4096
	for _, kind := range substrateKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			arr := core.MustNew(core.Config{Capacity: n, Seed: 47, Space: kind})
			prefillArray(b, arr, n/2)
			b.ResetTimer()
			total := 0
			for i := 0; i < b.N; i++ {
				total += arr.Occupancy().Total()
			}
			b.StopTimer()
			if total != b.N*n/2 {
				b.Fatalf("occupancy drifted: total %d over %d iterations", total, b.N)
			}
		})
	}
}

// BenchmarkUncontendedGetFree is the single-thread baseline cost of one
// register/deregister pair (the leftmost point of Figure 2).
func BenchmarkUncontendedGetFree(b *testing.B) {
	for _, algo := range registry.All() {
		algo := algo
		b.Run(algo.String(), func(b *testing.B) {
			arr := registry.MustNew(algo, registry.Options{Capacity: 1000, Seed: 29})
			h := arr.Handle()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.Get(); err != nil {
					b.Fatalf("Get: %v", err)
				}
				if err := h.Free(); err != nil {
					b.Fatalf("Free: %v", err)
				}
			}
		})
	}
}

// BenchmarkShardedScaling measures aggregate Get/Free throughput as the
// shard count grows in a scale-out deployment: the per-shard capacity and
// the offered load (resident names at fill% of one shard's capacity, plus g
// churning goroutines) are held fixed while shards are added, so S=1 runs a
// single array near its contention bound and S=8 spreads the same load over
// 8x the capacity. ns/op is the cost of one Get+Free pair; exactly g worker
// goroutines run regardless of GOMAXPROCS, so the numbers are comparable
// across machines. This is the recorded scaling evidence for the sharded
// subsystem (benchmarks/latest.json).
func BenchmarkShardedScaling(b *testing.B) {
	const (
		shardCapacity = 64
		goroutines    = 8
	)
	for _, fill := range []int{50, 85} {
		for _, shards := range []int{1, 2, 4, 8} {
			fill, shards := fill, shards
			b.Run(fmt.Sprintf("fill=%d/g=%d/S=%d", fill, goroutines, shards), func(b *testing.B) {
				arr := shard.MustNew(shard.Config{
					Shards:   shards,
					Capacity: shards * shardCapacity,
					Seed:     7,
				})
				// Fixed offered load: the residents fill one shard's worth of
				// capacity to fill%, regardless of how many shards exist.
				prefillArray(b, arr, shardCapacity*fill/100)
				var wg sync.WaitGroup
				b.ResetTimer()
				for w := 0; w < goroutines; w++ {
					iters := b.N / goroutines
					if w < b.N%goroutines {
						iters++
					}
					wg.Add(1)
					go func(iters int) {
						defer wg.Done()
						h := arr.Handle()
						for i := 0; i < iters; i++ {
							if _, err := h.Get(); err != nil {
								b.Errorf("Get: %v", err)
								return
							}
							if err := h.Free(); err != nil {
								b.Errorf("Free: %v", err)
								return
							}
						}
					}(iters)
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkShardedCollect measures the merged cross-shard Collect: the same
// total namespace at the same occupancy, scanned word-at-a-time through 1 or
// 8 bitmap views. The merge should cost the same per slot as a single array.
func BenchmarkShardedCollect(b *testing.B) {
	const capacity = 4096
	for _, shards := range []int{1, 8} {
		shards := shards
		b.Run(fmt.Sprintf("S=%d", shards), func(b *testing.B) {
			arr := shard.MustNew(shard.Config{Shards: shards, Capacity: capacity, Seed: 7})
			prefillArray(b, arr, capacity/2)
			dst := make([]int, 0, capacity)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = arr.Collect(dst[:0])
			}
			if len(dst) != capacity/2 {
				b.Fatalf("Collect returned %d names, want %d", len(dst), capacity/2)
			}
		})
	}
}

// probeModeBench measures one probe-mode cell: `fill`% of capacity stays
// resident while exactly g goroutines churn Get/Free pairs, so ns/op is the
// cost of one pair at that load, comparable across machines regardless of
// GOMAXPROCS.
func probeModeBench(mode core.ProbeMode, epsilon float64, capacity, fill, goroutines int) func(b *testing.B) {
	return func(b *testing.B) {
		arr := core.MustNew(core.Config{Capacity: capacity, Epsilon: epsilon, Seed: 61, Probe: mode})
		prefillArray(b, arr, capacity*fill/100)
		var wg sync.WaitGroup
		b.ResetTimer()
		for w := 0; w < goroutines; w++ {
			iters := b.N / goroutines
			if w < b.N%goroutines {
				iters++
			}
			wg.Add(1)
			go func(iters int) {
				defer wg.Done()
				h := arr.Handle()
				for i := 0; i < iters; i++ {
					if _, err := h.Get(); err != nil {
						b.Errorf("Get: %v", err)
						return
					}
					if err := h.Free(); err != nil {
						b.Errorf("Free: %v", err)
					}
				}
			}(iters)
		}
		wg.Wait()
	}
}

// BenchmarkProbeModes compares the write-side probing strategies across
// fill levels and goroutine counts: "slot" pays one test-and-set per probed
// slot (and so loses probes at exactly the array's fill fraction), "word"
// claims any free bit of the probed 64-slot window with one load plus one
// fetch-or, so a trial fails only when the whole window is full. At 50% fill
// the modes are nearly tied (the first slot probe usually wins anyway); the
// word claim pulls ahead as fill grows. The fill=95 cells are the headline
// high-fill comparison recorded in benchmarks/latest.json.
func BenchmarkProbeModes(b *testing.B) {
	const capacity = 4 * 1000
	for _, mode := range []core.ProbeMode{core.ProbeSlot, core.ProbeWord} {
		for _, fill := range []int{50, 85, 95} {
			for _, goroutines := range []int{1, 8} {
				b.Run(fmt.Sprintf("probe=%s/fill=%d/g=%d", mode, fill, goroutines),
					probeModeBench(mode, 0, capacity, fill, goroutines))
			}
		}
	}
}

// BenchmarkProbeModesTightArray is the word-mode showcase: a space-tight
// ε = 0.25 main array (1.25n slots) at 95% fill, where a random slot probe
// loses roughly three times out of four while a word claim still finds a free
// bit in essentially every window. This is the regime the word-claim fast
// path exists for.
func BenchmarkProbeModesTightArray(b *testing.B) {
	const capacity = 4 * 1000
	for _, mode := range []core.ProbeMode{core.ProbeSlot, core.ProbeWord} {
		for _, goroutines := range []int{1, 8} {
			b.Run(fmt.Sprintf("probe=%s/fill=95/g=%d", mode, goroutines),
				probeModeBench(mode, 0.25, capacity, 95, goroutines))
		}
	}
}

// BenchmarkProbesPerBatchAblation measures the effect of the per-batch trial
// count c_i (the analysis uses a large constant, the implementation uses 1).
func BenchmarkProbesPerBatchAblation(b *testing.B) {
	const capacity = 4 * 1000
	for _, probes := range []int{1, 2, 4, 16} {
		probes := probes
		b.Run(fmt.Sprintf("c=%d", probes), func(b *testing.B) {
			arr := core.MustNew(core.Config{Capacity: capacity, ProbesPerBatch: probes, Seed: 31})
			prefillArray(b, arr, capacity/2)
			var (
				mu     sync.Mutex
				merged activity.ProbeStats
			)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				h := arr.Handle()
				for pb.Next() {
					if _, err := h.Get(); err != nil {
						b.Errorf("Get: %v", err)
						return
					}
					if err := h.Free(); err != nil {
						b.Errorf("Free: %v", err)
						return
					}
				}
				mu.Lock()
				merged.Merge(h.Stats())
				mu.Unlock()
			})
			b.StopTimer()
			reportProbeMetrics(b, merged)
		})
	}
}

// BenchmarkSoftwareTAS compares the LevelArray running on hardware
// compare-and-swap slots against the randomized read/write test-and-set
// construction the paper describes as the fallback for machines without a
// hardware primitive (Section 2).
func BenchmarkSoftwareTAS(b *testing.B) {
	const capacity = 2 * 1000
	configs := map[string]core.Config{
		"hardware": {Capacity: capacity, Seed: 41},
		"software": {Capacity: capacity, Seed: 41, SoftwareTAS: true},
	}
	for name, cfg := range configs {
		cfg := cfg
		b.Run(name, func(b *testing.B) {
			arr := core.MustNew(cfg)
			prefillArray(b, arr, capacity/2)
			var (
				mu     sync.Mutex
				merged activity.ProbeStats
			)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				h := arr.Handle()
				for pb.Next() {
					if _, err := h.Get(); err != nil {
						b.Errorf("Get: %v", err)
						return
					}
					if err := h.Free(); err != nil {
						b.Errorf("Free: %v", err)
						return
					}
				}
				mu.Lock()
				merged.Merge(h.Stats())
				mu.Unlock()
			})
			b.StopTimer()
			reportProbeMetrics(b, merged)
		})
	}
}

// BenchmarkApplications measures registration cost end to end inside the
// motivating applications (memory reclamation, STM, flat combining, barrier)
// with the registry backed by the LevelArray vs the deterministic scan.
func BenchmarkApplications(b *testing.B) {
	for _, algo := range []registry.Algorithm{registry.LevelArray, registry.Deterministic} {
		algo := algo
		b.Run(algo.String(), func(b *testing.B) {
			var totalProbes, totalRegs float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Applications(experiments.ApplicationsConfig{
					Workers:      4,
					OpsPerWorker: 500,
					Algorithms:   []registry.Algorithm{algo},
					Seed:         uint64(i + 1),
				})
				if err != nil {
					b.Fatalf("Applications: %v", err)
				}
				for _, row := range res.Rows {
					totalProbes += float64(row.Registration.TotalProbes)
					totalRegs += float64(row.Registration.Ops)
				}
			}
			if totalRegs > 0 {
				b.ReportMetric(totalProbes/totalRegs, "probes/registration")
			}
		})
	}
}

// BenchmarkAdopt measures the slot-adoption path used to hand registrations
// over and to set up healing experiments.
func BenchmarkAdopt(b *testing.B) {
	arr := core.MustNew(core.Config{Capacity: 1024, Seed: 37})
	h := arr.Handle().(*core.Handle)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Adopt(i % arr.Layout().MainSize()); err != nil {
			b.Fatalf("Adopt: %v", err)
		}
		if err := h.Free(); err != nil {
			b.Fatalf("Free: %v", err)
		}
	}
}

// BenchmarkHealingConvergence measures, via the balance package, how quickly
// an overcrowded batch drains as a function of capacity (an ablation on the
// self-healing speed the paper notes is faster than the analysis predicts).
func BenchmarkHealingConvergence(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var totalOps float64
			healed := 0
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig3Healing(experiments.HealingConfig{
					Capacity:      n,
					SnapshotEvery: n / 2,
					Snapshots:     32,
					Seed:          uint64(i + 1),
				})
				if err != nil {
					b.Fatalf("Fig3Healing: %v", err)
				}
				if res.HealedAfter >= 0 {
					totalOps += float64(res.Snapshots[res.HealedAfter].Step)
					healed++
				}
			}
			if healed > 0 {
				b.ReportMetric(totalOps/float64(healed), "ops-to-heal")
			}
		})
	}
}

// leaseBench measures one Acquire+Release pair through the lease manager at
// the given TTL with exactly g goroutines churning, comparable to the raw
// handle Get+Free benchmarks: the delta over those is the cost of leasing
// (token mint, entry transition, wheel insert for finite TTLs).
func leaseBench(ttl time.Duration, capacity, goroutines int) func(b *testing.B) {
	return func(b *testing.B) {
		arr := core.MustNew(core.Config{Capacity: capacity, Seed: 71})
		mgr := lease.MustNewManager(arr, lease.Config{TickInterval: 100 * time.Millisecond})
		mgr.Start()
		defer mgr.Close()
		var wg sync.WaitGroup
		b.ResetTimer()
		for w := 0; w < goroutines; w++ {
			iters := b.N / goroutines
			if w < b.N%goroutines {
				iters++
			}
			wg.Add(1)
			go func(iters int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					l, err := mgr.Acquire(ttl)
					if err != nil {
						b.Errorf("Acquire: %v", err)
						return
					}
					if err := mgr.Release(l.Name, l.Token); err != nil {
						b.Errorf("Release: %v", err)
						return
					}
				}
			}(iters)
		}
		wg.Wait()
	}
}

// BenchmarkLeaseAcquireRelease compares the lease manager's session cost for
// infinite leases (no deadline, no wheel traffic) against finite-TTL leases
// (deadline computation plus a hashed-wheel insert per acquire), at 1 and 8
// goroutines.
func BenchmarkLeaseAcquireRelease(b *testing.B) {
	const capacity = 4 * 1000
	for _, tc := range []struct {
		name string
		ttl  time.Duration
	}{
		{"ttl=inf", 0},
		{"ttl=1s", time.Second},
	} {
		for _, goroutines := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/g=%d", tc.name, goroutines),
				leaseBench(tc.ttl, capacity, goroutines))
		}
	}
}

// BenchmarkLeaseServiceLoopback measures one acquire+release session over
// the HTTP loopback service (two JSON POSTs through the full
// server -> lease -> shard -> core stack), with g concurrent clients.
func BenchmarkLeaseServiceLoopback(b *testing.B) {
	for _, goroutines := range []int{1, 8} {
		goroutines := goroutines
		b.Run(fmt.Sprintf("g=%d", goroutines), func(b *testing.B) {
			arr := shard.MustNew(shard.Config{Shards: 4, Capacity: 4096, Seed: 71})
			mgr := lease.MustNewManager(arr, lease.Config{TickInterval: 100 * time.Millisecond})
			mgr.Start()
			defer mgr.Close()
			srv := httptest.NewServer(server.New(mgr, server.Config{}))
			defer srv.Close()
			client := server.NewClient(srv.URL, nil)
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < goroutines; w++ {
				iters := b.N / goroutines
				if w < b.N%goroutines {
					iters++
				}
				wg.Add(1)
				go func(iters int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						l, status, _, err := client.Acquire(60_000)
						if err != nil || status != 200 {
							b.Errorf("acquire: status %d err %v", status, err)
							return
						}
						if status, err := client.Release(l.Name, l.Token); err != nil || status != 200 {
							b.Errorf("release: status %d err %v", status, err)
							return
						}
					}
				}(iters)
			}
			wg.Wait()
		})
	}
}

// startWireService boots the full service stack (server -> lease -> shard ->
// core) behind a real TCP loopback listener speaking the binary wire
// protocol, and returns its address.
func startWireService(b *testing.B) (addr string, done func()) {
	return startWireServiceTraced(b, nil)
}

// startWireServiceTraced is startWireService with a flight recorder installed
// on the wire server (nil = untraced), for the trace-overhead A/B benchmark.
func startWireServiceTraced(b *testing.B, rec *trace.Recorder) (addr string, done func()) {
	b.Helper()
	arr := shard.MustNew(shard.Config{Shards: 4, Capacity: 4096, Seed: 71})
	mgr := lease.MustNewManager(arr, lease.Config{TickInterval: 100 * time.Millisecond})
	mgr.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		mgr.Close()
		b.Fatalf("wire listener: %v", err)
	}
	srv := wire.NewServer(server.NewWireBackend(mgr, server.Config{Tracer: rec}))
	srv.SetTracer(rec)
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() {
		_ = srv.Close()
		mgr.Close()
	}
}

// BenchmarkWireServiceLoopback is the wire-protocol counterpart of
// BenchmarkLeaseServiceLoopback: one acquire+release session as two binary
// frames over a single pooled connection, with g concurrent clients sharing
// it (g=8 exercises pipelining and write-combining on one socket). The
// ns/op delta against the HTTP benchmark is the network tax this protocol
// exists to close.
func BenchmarkWireServiceLoopback(b *testing.B) {
	for _, goroutines := range []int{1, 8} {
		goroutines := goroutines
		b.Run(fmt.Sprintf("g=%d", goroutines), func(b *testing.B) {
			addr, done := startWireService(b)
			defer done()
			wc := wire.NewClient(addr, nil)
			defer wc.Close()
			client := server.NewWireClient(wc)
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < goroutines; w++ {
				iters := b.N / goroutines
				if w < b.N%goroutines {
					iters++
				}
				wg.Add(1)
				go func(iters int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						l, status, _, err := client.Acquire(60_000)
						if err != nil || status != 200 {
							b.Errorf("acquire: status %d err %v", status, err)
							return
						}
						if status, err := client.Release(l.Name, l.Token); err != nil || status != 200 {
							b.Errorf("release: status %d err %v", status, err)
							return
						}
					}
				}(iters)
			}
			wg.Wait()
		})
	}
}

// BenchmarkWireServiceTraceAB is the flight-recorder overhead gate, run by
// scripts/bench.sh --trace-ab: the same acquire+release session as
// BenchmarkWireServiceLoopback g=8 under three recorder states. "none" has
// no recorder installed; "off" has one installed but disabled (the default
// production shape — per frame it costs one atomic load and a nil-span
// check); "on" records every span with full phase attribution. The gate
// holds off within 2% of none and on within 10%.
func BenchmarkWireServiceTraceAB(b *testing.B) {
	const goroutines = 8
	for _, mode := range []string{"none", "off", "on"} {
		var rec *trace.Recorder
		switch mode {
		case "off":
			rec = trace.New(trace.Config{Enabled: false})
		case "on":
			rec = trace.New(trace.Config{Enabled: true})
		}
		b.Run("trace="+mode, func(b *testing.B) {
			addr, done := startWireServiceTraced(b, rec)
			defer done()
			wc := wire.NewClient(addr, nil)
			defer wc.Close()
			client := server.NewWireClient(wc)
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < goroutines; w++ {
				iters := b.N / goroutines
				if w < b.N%goroutines {
					iters++
				}
				wg.Add(1)
				go func(iters int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						l, status, _, err := client.Acquire(60_000)
						if err != nil || status != 200 {
							b.Errorf("acquire: status %d err %v", status, err)
							return
						}
						if status, err := client.Release(l.Name, l.Token); err != nil || status != 200 {
							b.Errorf("release: status %d err %v", status, err)
							return
						}
					}
				}(iters)
			}
			wg.Wait()
		})
	}
}

// BenchmarkWireBatchLoopback measures the batched session shape: one
// AcquireN frame granting 64 leases and one ReleaseN frame returning them,
// amortizing the wire round trip over the whole batch. ns/lease-op is the
// amortized per-lease cost (128 lease operations per iteration).
func BenchmarkWireBatchLoopback(b *testing.B) {
	const batch = 64
	addr, done := startWireService(b)
	defer done()
	wc := wire.NewClient(addr, nil)
	defer wc.Close()
	client := server.NewWireClient(wc)
	grants := make([]server.LeaseResponse, 0, batch)
	refs := make([]server.LeaseRef, 0, batch)
	results := make([]server.RenewResult, 0, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var status int
		var err error
		grants, status, _, err = client.AcquireBatch(batch, 60_000, grants[:0])
		if err != nil || status != 200 || len(grants) != batch {
			b.Fatalf("AcquireBatch: status %d, %d grants, err %v", status, len(grants), err)
		}
		refs = refs[:0]
		for _, g := range grants {
			refs = append(refs, server.LeaseRef{Name: g.Name, Token: g.Token})
		}
		results, status, err = client.ReleaseBatch(refs, results[:0])
		if err != nil || status != 200 {
			b.Fatalf("ReleaseBatch: status %d err %v", status, err)
		}
		for j, r := range results {
			if r.Status != 200 {
				b.Fatalf("release item %d: status %d", j, r.Status)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(2*batch), "ns/lease-op")
}

// BenchmarkServiceAB is the HTTP-vs-wire A/B pair behind scripts/bench.sh
// --ab: the identical workload (8 clients churning acquire+release sessions
// against the identical service stack) over both transports, so the ns/op
// ratio is the wire protocol's speedup. Only the transport differs — JSON
// POSTs over per-request HTTP handling vs binary frames pipelined on one
// pooled connection.
func BenchmarkServiceAB(b *testing.B) {
	const goroutines = 8
	session := func(b *testing.B, api server.LeaseAPI) {
		var wg sync.WaitGroup
		b.ResetTimer()
		for w := 0; w < goroutines; w++ {
			iters := b.N / goroutines
			if w < b.N%goroutines {
				iters++
			}
			wg.Add(1)
			go func(iters int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					l, status, _, err := api.Acquire(60_000)
					if err != nil || status != 200 {
						b.Errorf("acquire: status %d err %v", status, err)
						return
					}
					if status, err := api.Release(l.Name, l.Token); err != nil || status != 200 {
						b.Errorf("release: status %d err %v", status, err)
						return
					}
				}
			}(iters)
		}
		wg.Wait()
	}
	b.Run("proto=http", func(b *testing.B) {
		arr := shard.MustNew(shard.Config{Shards: 4, Capacity: 4096, Seed: 71})
		mgr := lease.MustNewManager(arr, lease.Config{TickInterval: 100 * time.Millisecond})
		mgr.Start()
		defer mgr.Close()
		srv := httptest.NewServer(server.New(mgr, server.Config{}))
		defer srv.Close()
		session(b, server.NewClient(srv.URL, nil))
	})
	b.Run("proto=wire", func(b *testing.B) {
		addr, done := startWireService(b)
		defer done()
		wc := wire.NewClient(addr, nil)
		defer wc.Close()
		session(b, server.NewWireClient(wc))
	})
}

// BenchmarkLaloadLoopbackSmoke is the laload loopback smoke run in benchmark
// form: each iteration drives one full closed-loop load run (3000 acquires,
// 8 clients, 10% crash fraction, 20% renews) against an in-process service
// and fails the benchmark on any lease-contract violation. ns/op is the wall
// time of one complete verified run — including the post-run expiry drain —
// so the recorded number tracks the end-to-end health of the service stack
// rather than a single hot path.
func BenchmarkLaloadLoopbackSmoke(b *testing.B) {
	arr := shard.MustNew(shard.Config{Shards: 4, Capacity: 2048, Seed: 71})
	mgr := lease.MustNewManager(arr, lease.Config{TickInterval: 20 * time.Millisecond})
	mgr.Start()
	defer mgr.Close()
	srv := httptest.NewServer(server.New(mgr, server.Config{DefaultTTL: time.Second}))
	defer srv.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := server.RunLoad(server.LoadConfig{
			BaseURL:      srv.URL,
			Clients:      8,
			Acquires:     3000,
			TTL:          300 * time.Millisecond,
			HoldMean:     100 * time.Microsecond,
			CrashPercent: 10,
			RenewPercent: 20,
			Seed:         uint64(i) + 1,
		})
		if err != nil {
			b.Fatalf("RunLoad: %v", err)
		}
		if v := report.Violations(); v != nil {
			b.Fatalf("lease contract violated: %v", v)
		}
	}
}

// BenchmarkClusterRouteLoopback measures one acquire+release session routed
// through a 3-node in-process cluster (table lookup, epoch header, owner
// dispatch, two JSON POSTs through node -> lease -> core), with g concurrent
// routed clients' goroutines sharing one cluster.Client.
func BenchmarkClusterRouteLoopback(b *testing.B) {
	for _, goroutines := range []int{1, 8} {
		goroutines := goroutines
		b.Run(fmt.Sprintf("g=%d", goroutines), func(b *testing.B) {
			local, err := cluster.StartLocal(cluster.LocalConfig{
				Nodes:      3,
				Partitions: 8,
				Capacity:   4096,
				Seed:       71,
				Node: cluster.NodeConfig{
					Lease:      lease.Config{TickInterval: 100 * time.Millisecond},
					DefaultTTL: time.Minute,
					MaxTTL:     time.Minute,
				},
			})
			if err != nil {
				b.Fatalf("StartLocal: %v", err)
			}
			defer local.Close()
			client, err := cluster.NewClient(cluster.ClientConfig{Targets: local.Targets()})
			if err != nil {
				b.Fatalf("NewClient: %v", err)
			}
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < goroutines; w++ {
				iters := b.N / goroutines
				if w < b.N%goroutines {
					iters++
				}
				wg.Add(1)
				go func(iters int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						g, status, _, err := client.Acquire(60_000)
						if err != nil || status != 200 {
							b.Errorf("acquire: status %d err %v", status, err)
							return
						}
						if status, err := client.Release(g.Name, g.Token); err != nil || status != 200 {
							b.Errorf("release: status %d err %v", status, err)
							return
						}
					}
				}(iters)
			}
			wg.Wait()
		})
	}
}

// calSink keeps the calibration loop's result observable so the compiler
// cannot elide the work.
var calSink uint64

// calMem is the calibration benchmark's scatter-read target: 8 MiB, well past
// L2, so the anchor samples the same cache/memory subsystem the probe-loop
// benchmarks live in, not just the ALU.
var calMem []uint64

// BenchmarkCalibration is the regression gate's machine-speed anchor: a fixed
// blend of integer work (splitmix64 rounds) and dependent scatter reads over
// an 8 MiB array, touching no levelarray code path. The gated benchmarks are
// probe loops over large arrays, so the anchor must track both CPU speed and
// memory-subsystem contention — a pure-register spin stays fast while a noisy
// co-tenant trashes the cache, and would mis-scale the baseline exactly when
// scaling matters most. The gate in scripts/bench.sh multiplies the committed
// baseline by the ratio of this benchmark's ns/op now vs at baseline-
// recording time, so "5% slower" means slower relative to the machine, not
// relative to whatever hardware recorded the baseline.
func BenchmarkCalibration(b *testing.B) {
	const words = 1 << 20 // 8 MiB of uint64
	if calMem == nil {
		calMem = make([]uint64, words)
		for i := range calMem {
			calMem[i] = uint64(i) * 0x9E3779B97F4A7C15
		}
	}
	var acc uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := uint64(i)
		for r := 0; r < 64; r++ {
			x += 0x9E3779B97F4A7C15
			z := x
			z ^= z >> 30
			z *= 0xBF58476D1CE4E5B9
			z ^= z >> 27
			z *= 0x94D049BB133111EB
			z ^= z >> 31
			// Dependent scatter read: the next index derives from the loaded
			// value, so the loop pays real memory latency every round.
			x += calMem[z&(words-1)]
			acc += z
		}
	}
	calSink = acc
}
