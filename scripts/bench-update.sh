#!/usr/bin/env bash
# Re-measures the regression-gate benchmarks on this machine and promotes the
# result to benchmarks/baseline.json — the file scripts/bench.sh --gate (and
# the CI bench-gate job) compares against. Run it after deliberate performance
# work, commit the new baseline with the change that earned it, and the gate
# will hold every later change to within BENCH_MAX_REGRESSION_PCT of it.
#
# The baseline records BenchmarkCalibration alongside the gated benchmarks,
# so a baseline promoted on a fast laptop still gates correctly on a slow CI
# runner: the gate rescales by the calibration ratio before comparing.
#
#   scripts/bench-update.sh            # default gate set, 3 reps
#   COUNT=5 scripts/bench-update.sh    # more reps for a steadier minimum
set -euo pipefail

cd "$(dirname "$0")/.."

BASELINE=benchmarks/baseline.json
GATE_OUT="$BASELINE" BENCH_GATE_SKIP_COMPARE=1 scripts/bench.sh --gate
echo "promoted $BASELINE:"
cat "$BASELINE"
