#!/usr/bin/env bash
# Runs the benchmark suite and records the results under benchmarks/, so a
# baseline can be diffed against after performance work (e.g. with
# golang.org/x/perf/cmd/benchstat when available):
#
#   scripts/bench.sh                 # full suite -> benchmarks/latest.{txt,json}
#   BENCH='Substrates' scripts/bench.sh   # just the substrate comparisons
#   BENCH='Sharded' scripts/bench.sh      # just the shard-scaling benchmarks
#   BENCH='ProbeModes' scripts/bench.sh   # just the probe-mode comparisons
#   BENCH='Lease|Laload' scripts/bench.sh # lease manager + name-service benchmarks,
#                                    # incl. the laload loopback smoke (one full
#                                    # verified closed-loop run per iteration)
#   COUNT=5 scripts/bench.sh         # repetitions for stable statistics
#   scripts/bench.sh --ab            # HTTP-vs-wire A/B only -> benchmarks/wire-ab.txt
#   scripts/bench.sh --trace-ab      # flight-recorder overhead gate
#                                    #   -> benchmarks/trace-ab.txt
#   scripts/bench.sh --rto           # crash-restart recovery benchmark
#                                    #   -> benchmarks/recovery-rto.txt
#   scripts/bench.sh --gate          # regression gate vs benchmarks/baseline.json
#   scripts/bench.sh --gate-check    # re-compare the last --gate run (no re-run)
#
# The gate makes "fast" a checked invariant: --gate runs the GATE_BENCH
# benchmarks COUNT times, keeps each benchmark's median ns/op (robust to the
# one rep that hit a GC or a noisy co-tenant), writes the flat `"name": ns_op`
# result to GATE_OUT, and fails if any benchmark is more than
# BENCH_MAX_REGRESSION_PCT percent slower than benchmarks/baseline.json. Before comparing, the baseline
# is scaled by the ratio of BenchmarkCalibration (a fixed pure-CPU anchor) now
# vs at baseline-recording time, so the gate measures the tree, not the
# machine. Knobs:
#
#   GATE_BENCH                 benchmarks to gate (default the stable subset)
#   COUNT                      repetitions, median taken (default 5 for --gate)
#   BENCH_MAX_REGRESSION_PCT   allowed slowdown in percent (default 5)
#   BENCH_BASELINE_SCALE       multiplies baseline ns/op before comparing;
#                              0.5 pretends the baseline was twice as fast —
#                              CI uses it to prove the gate actually fails
#   GATE_OUT                   where the run's JSON goes (default
#                              /tmp/la-gate-latest.json)
#   BENCH_GATE_SKIP_COMPARE    1 = run and record but do not compare
#                              (scripts/bench-update.sh uses this to promote
#                              a fresh baseline)
#
# latest.txt is the raw `go test -bench` output; latest.json maps benchmark
# name -> ns/op (averaged over COUNT repetitions), so the perf trajectory is
# diffable across PRs with plain JSON tooling. Before each run the previous
# latest.{txt,json} are rotated to previous.{txt,json}, and afterwards a
# per-benchmark delta table (prev ns/op, new ns/op, %) is printed and written
# to benchmarks/delta.txt so regressions are visible at a glance (and in the
# PR diff when the recorded files are committed).
set -euo pipefail

cd "$(dirname "$0")/.."

# --ab: run only the protocol A/B pair (the identical acquire+release
# workload over HTTP/JSON and over the binary wire protocol) and record the
# speedup factor in benchmarks/wire-ab.txt.
if [ "${1:-}" = "--ab" ]; then
  COUNT="${COUNT:-3}"
  BENCHTIME="${BENCHTIME:-1s}"
  OUT_DIR=benchmarks
  OUT_AB="$OUT_DIR/wire-ab.txt"
  mkdir -p "$OUT_DIR"
  {
    echo "# go test -bench BenchmarkServiceAB -benchtime $BENCHTIME -count $COUNT"
    echo "# $(date -u +"%Y-%m-%dT%H:%M:%SZ") $(go version)"
    go test -run xxx -bench 'BenchmarkServiceAB' -benchtime "$BENCHTIME" -count "$COUNT" .
  } | tee "$OUT_AB.raw"
  # Average repetitions per protocol and append the headline speedup factor.
  awk '
    /^BenchmarkServiceAB\/proto=http/ { http += $3; nh++ }
    /^BenchmarkServiceAB\/proto=wire/ { wire += $3; nw++ }
    { print }
    END {
      if (nh > 0 && nw > 0 && wire > 0) {
        printf "\n# http %.0f ns/op, wire %.0f ns/op over %d reps\n", http / nh, wire / nw, nh
        printf "# wire speedup over HTTP: %.2fx\n", (http / nh) / (wire / nw)
      }
    }
  ' "$OUT_AB.raw" > "$OUT_AB"
  rm -f "$OUT_AB.raw"
  tail -3 "$OUT_AB"
  echo "wrote $OUT_AB"
  exit 0
fi

# --trace-ab: the flight-recorder overhead gate. Runs the same wire
# acquire+release workload three ways — no recorder installed, a recorder
# installed but disabled (the default production shape), and a recorder
# recording every span — and fails if the disabled recorder costs more than
# TRACE_OFF_MAX_PCT (default 2) percent or full recording more than
# TRACE_ON_MAX_PCT (default 10) percent over the no-recorder baseline.
if [ "${1:-}" = "--trace-ab" ]; then
  COUNT="${COUNT:-5}"
  BENCHTIME="${BENCHTIME:-1s}"
  TRACE_OFF_MAX_PCT="${TRACE_OFF_MAX_PCT:-2}"
  TRACE_ON_MAX_PCT="${TRACE_ON_MAX_PCT:-10}"
  OUT_TAB=benchmarks/trace-ab.txt
  mkdir -p benchmarks
  {
    echo "# go test -bench BenchmarkWireServiceTraceAB -benchtime $BENCHTIME -count $COUNT"
    echo "# $(date -u +"%Y-%m-%dT%H:%M:%SZ") $(go version)"
    go test -run xxx -bench 'BenchmarkWireServiceTraceAB' -benchtime "$BENCHTIME" -count "$COUNT" .
  } | tee "$OUT_TAB.raw"
  # Average repetitions per variant and gate the overhead percentages.
  awk -v offmax="$TRACE_OFF_MAX_PCT" -v onmax="$TRACE_ON_MAX_PCT" '
    /^BenchmarkWireServiceTraceAB\/trace=none/ { none += $3; nn++ }
    /^BenchmarkWireServiceTraceAB\/trace=off/  { off  += $3; no++ }
    /^BenchmarkWireServiceTraceAB\/trace=on/   { on   += $3; nb++ }
    { print }
    END {
      if (nn == 0 || no == 0 || nb == 0 || none == 0) {
        print "# FAIL: missing trace A/B variants"
        exit 1
      }
      base = none / nn
      offpct = (off / no - base) / base * 100
      onpct  = (on / nb - base) / base * 100
      printf "\n# none %.0f ns/op, off %.0f ns/op (%+.1f%%), on %.0f ns/op (%+.1f%%) over %d reps\n", base, off / no, offpct, on / nb, onpct, nn
      fail = 0
      if (offpct > offmax) { printf "# FAIL: tracing-off overhead %+.1f%% exceeds %.1f%%\n", offpct, offmax; fail = 1 }
      if (onpct > onmax)   { printf "# FAIL: tracing-on overhead %+.1f%% exceeds %.1f%%\n", onpct, onmax; fail = 1 }
      if (!fail) printf "# PASS: tracing-off within %.1f%%, tracing-on within %.1f%%\n", offmax, onmax
      exit fail
    }
  ' "$OUT_TAB.raw" > "$OUT_TAB" || {
    rm -f "$OUT_TAB.raw"
    tail -4 "$OUT_TAB"
    echo "trace A/B gate: FAILED" >&2
    exit 1
  }
  rm -f "$OUT_TAB.raw"
  tail -3 "$OUT_TAB"
  echo "wrote $OUT_TAB"
  exit 0
fi

# --rto: the crash-restart recovery-time-objective benchmark. Each iteration
# kills a durable member holding live leases and times restart-to-first-grant;
# the recorded rto-seconds against quarantine-avoided-seconds (MaxTTL) is the
# headline durability number. The benchmark itself fails if any iteration's
# RTO reaches MaxTTL (i.e. the node quarantined instead of replaying).
if [ "${1:-}" = "--rto" ]; then
  COUNT="${COUNT:-1}"
  BENCHTIME="${BENCHTIME:-10x}"
  OUT_RTO=benchmarks/recovery-rto.txt
  mkdir -p benchmarks
  {
    echo "# go test -bench BenchmarkRestartRTO -benchtime $BENCHTIME -count $COUNT ./internal/cluster/"
    echo "# $(date -u +"%Y-%m-%dT%H:%M:%SZ") $(go version)"
    go test -run xxx -bench 'BenchmarkRestartRTO' -benchtime "$BENCHTIME" -count "$COUNT" ./internal/cluster/
  } | tee "$OUT_RTO.raw"
  # Append the headline: mean RTO vs the MaxTTL quarantine a journal-less
  # rejoin would have to sit out.
  awk '
    /^BenchmarkRestartRTO/ {
      for (i = 3; i < NF; i++) {
        if ($(i + 1) == "rto-seconds")                { rto += $(i);  nr++ }
        if ($(i + 1) == "quarantine-avoided-seconds") { quar = $(i) }
        if ($(i + 1) == "restored-sessions")          { sess = $(i) }
      }
    }
    { print }
    END {
      if (nr > 0 && quar > 0) {
        printf "\n# mean RTO %.3fs (%.0f sessions replayed) vs %.0fs MaxTTL quarantine avoided: %.0fx faster rejoin\n", rto / nr, sess, quar, quar / (rto / nr)
      }
    }
  ' "$OUT_RTO.raw" > "$OUT_RTO"
  rm -f "$OUT_RTO.raw"
  tail -2 "$OUT_RTO"
  echo "wrote $OUT_RTO"
  exit 0
fi

# --gate / --gate-check: the benchmark regression gate.
if [ "${1:-}" = "--gate" ] || [ "${1:-}" = "--gate-check" ]; then
  # Default gate set: the pure CPU paths. The ttl=1s lease variants are
  # excluded — they interleave with the expirer's timer wheel, and wall-clock
  # timer noise swamps a 5% band on shared runners.
  GATE_BENCH="${GATE_BENCH:-(UncontendedGetFree|LeaseAcquireRelease)/(LevelArray|Random|LinearProbing|Deterministic|ttl=inf)}"
  COUNT="${COUNT:-5}"
  BENCHTIME="${BENCHTIME:-1s}"
  BENCH_MAX_REGRESSION_PCT="${BENCH_MAX_REGRESSION_PCT:-5}"
  BENCH_BASELINE_SCALE="${BENCH_BASELINE_SCALE:-1}"
  GATE_OUT="${GATE_OUT:-/tmp/la-gate-latest.json}"
  BASELINE=benchmarks/baseline.json

  if [ "$1" = "--gate" ]; then
    RAW="$(mktemp)"
    trap 'rm -f "$RAW"' EXIT
    echo "# gate run: -bench '$GATE_BENCH' -benchtime $BENCHTIME -count $COUNT (calibration bracketed)"
    # Calibration brackets the main run — samples before AND after, pooled by
    # median — so machine-speed drift across the run (turbo decay, container
    # throttling, co-tenants arriving) lands inside the calibration estimate
    # instead of silently skewing every comparison.
    go test -run xxx -bench '^BenchmarkCalibration$' -benchtime "$BENCHTIME" -count 2 . | tee "$RAW"
    go test -run xxx -bench "$GATE_BENCH" -benchtime "$BENCHTIME" -count "$COUNT" . | tee -a "$RAW"
    go test -run xxx -bench '^BenchmarkCalibration$' -benchtime "$BENCHTIME" -count 2 . | tee -a "$RAW"
    # Distill to flat `"name": median_ns_op` JSON: the median over
    # repetitions shrugs off the one rep that hit a GC, a turbo step or a
    # noisy co-tenant, where both mean and min would follow it.
    awk '
      /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        for (i = 3; i < NF; i++) {
          if ($(i + 1) == "ns/op") {
            if (!(name in cnt)) order[++k] = name
            vals[name, ++cnt[name]] = $(i) + 0
          }
        }
      }
      END {
        printf "{\n"
        for (j = 1; j <= k; j++) {
          n = order[j]
          m = cnt[n]
          for (a = 2; a <= m; a++) {          # insertion sort; m is tiny
            v = vals[n, a]
            for (b = a - 1; b >= 1 && vals[n, b] > v; b--) vals[n, b + 1] = vals[n, b]
            vals[n, b + 1] = v
          }
          if (m % 2) med = vals[n, (m + 1) / 2]
          else med = (vals[n, m / 2] + vals[n, m / 2 + 1]) / 2
          printf "  \"%s\": %.2f%s\n", n, med, (j < k ? "," : "")
        }
        printf "}\n"
      }
    ' "$RAW" > "$GATE_OUT"
    echo "wrote $GATE_OUT"
    if [ "${BENCH_GATE_SKIP_COMPARE:-0}" = "1" ]; then
      exit 0
    fi
  fi

  if [ ! -f "$GATE_OUT" ]; then
    echo "bench gate: $GATE_OUT missing; run scripts/bench.sh --gate first" >&2
    exit 2
  fi
  if [ ! -f "$BASELINE" ]; then
    echo "bench gate: $BASELINE missing; promote one with scripts/bench-update.sh" >&2
    exit 2
  fi

  # Compare the gate run against the calibration-scaled baseline. Every
  # baseline benchmark must be present in the run (missing coverage is a
  # failure, never silent) and be within the allowed slowdown.
  awk -F'"' -v maxpct="$BENCH_MAX_REGRESSION_PCT" -v bscale="$BENCH_BASELINE_SCALE" '
    /":/ {
      name = $2
      val = $3
      gsub(/[:, ]/, "", val)
      if (NR == FNR) { base[name] = val + 0; border[++bk] = name; next }
      new[name] = val + 0
    }
    END {
      cal = 1.0
      if (("BenchmarkCalibration" in base) && ("BenchmarkCalibration" in new) && base["BenchmarkCalibration"] > 0) {
        cal = new["BenchmarkCalibration"] / base["BenchmarkCalibration"]
      }
      printf "benchmark regression gate: max +%.1f%%, calibration scale %.3f, baseline scale %s\n", maxpct, cal, bscale
      printf "%-60s %12s %12s %8s  %s\n", "benchmark", "allowed", "new ns/op", "delta", "verdict"
      fail = 0
      for (j = 1; j <= bk; j++) {
        n = border[j]
        if (n == "BenchmarkCalibration") continue
        allowed = base[n] * cal * bscale
        if (!(n in new)) {
          printf "%-60s %12.2f %12s %8s  MISSING (not run)\n", n, allowed, "-", "-"
          fail = 1
          continue
        }
        pct = (new[n] - allowed) / allowed * 100
        verdict = "ok"
        if (pct > maxpct) { verdict = "REGRESSION"; fail = 1 }
        printf "%-60s %12.2f %12.2f %+7.1f%%  %s\n", n, allowed, new[n], pct, verdict
      }
      for (n in new) {
        if (!(n in base) && n != "BenchmarkCalibration") {
          printf "%-60s %12s %12.2f %8s  new (not in baseline)\n", n, "-", new[n], "-"
        }
      }
      exit fail
    }
  ' "$BASELINE" "$GATE_OUT" && status=0 || status=$?
  if [ $status -ne 0 ]; then
    echo "bench gate: FAILED (regression beyond ${BENCH_MAX_REGRESSION_PCT}% or missing coverage)" >&2
    exit 1
  fi
  echo "bench gate: ok"
  exit 0
fi

BENCH="${BENCH:-.}"
COUNT="${COUNT:-1}"
BENCHTIME="${BENCHTIME:-1s}"
OUT_DIR=benchmarks
OUT="$OUT_DIR/latest.txt"
OUT_JSON="$OUT_DIR/latest.json"

mkdir -p "$OUT_DIR"

# Keep the previous run around for manual diffing.
if [ -f "$OUT" ]; then
  cp "$OUT" "$OUT_DIR/previous.txt"
fi
if [ -f "$OUT_JSON" ]; then
  cp "$OUT_JSON" "$OUT_DIR/previous.json"
fi

{
  echo "# go test -bench $BENCH -benchtime $BENCHTIME -count $COUNT"
  echo "# $(date -u +"%Y-%m-%dT%H:%M:%SZ") $(go version)"
  go test -run xxx -bench "$BENCH" -benchtime "$BENCHTIME" -count "$COUNT" .
} | tee "$OUT"

# Distill the raw output into benchmark name -> ns/op. The -N GOMAXPROCS
# suffix is stripped and repetitions (COUNT > 1) are averaged.
awk '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (i = 3; i < NF; i++) {
      if ($(i + 1) == "ns/op") {
        if (!(name in sum)) order[++k] = name
        sum[name] += $(i)
        cnt[name]++
      }
    }
  }
  END {
    printf "{\n"
    for (j = 1; j <= k; j++) {
      n = order[j]
      printf "  \"%s\": %.2f%s\n", n, sum[n] / cnt[n], (j < k ? "," : "")
    }
    printf "}\n"
  }
' "$OUT" > "$OUT_JSON"

# Per-benchmark delta table against the rotated previous run. Both files are
# the flat `"name": ns_op` JSON written above, so plain awk can join them.
# Deltas inside the +/- NOISE_BAND_PCT band (default 10%) are annotated as
# noise: single-rep timings on a busy machine routinely wander that far, and
# an unmarked "+7%" next to a real regression teaches readers to ignore both.
OUT_DELTA="$OUT_DIR/delta.txt"
NOISE_BAND_PCT="${NOISE_BAND_PCT:-10}"
if [ -f "$OUT_DIR/previous.json" ]; then
  awk -F'"' -v band="$NOISE_BAND_PCT" '
    /":/ {
      name = $2
      val = $3
      gsub(/[:, ]/, "", val)
      if (NR == FNR) { prev[name] = val; next }
      order[++k] = name
      new[name] = val
    }
    END {
      printf "%-60s %12s %12s %8s  %s\n", "benchmark", "prev ns/op", "new ns/op", "delta", "note"
      for (j = 1; j <= k; j++) {
        n = order[j]
        if (n in prev && prev[n] + 0 > 0) {
          pct = (new[n] - prev[n]) / prev[n] * 100
          note = sprintf("~ within +/-%g%% noise band", band)
          if (pct > band) note = "SLOWER (outside noise band)"
          else if (pct < -band) note = "faster (outside noise band)"
          printf "%-60s %12.2f %12.2f %+7.1f%%  %s\n", n, prev[n], new[n], pct, note
        } else {
          printf "%-60s %12s %12.2f %8s\n", n, "-", new[n], "new"
        }
      }
    }
  ' "$OUT_DIR/previous.json" "$OUT_JSON" | tee "$OUT_DELTA"
else
  echo "no previous.json; skipping delta table" | tee "$OUT_DELTA"
fi

echo "wrote $OUT, $OUT_JSON and $OUT_DELTA"
