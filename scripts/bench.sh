#!/usr/bin/env bash
# Runs the benchmark suite and records the results under benchmarks/, so a
# baseline can be diffed against after performance work (e.g. with
# golang.org/x/perf/cmd/benchstat when available):
#
#   scripts/bench.sh                 # full suite -> benchmarks/latest.{txt,json}
#   BENCH='Substrates' scripts/bench.sh   # just the substrate comparisons
#   BENCH='Sharded' scripts/bench.sh      # just the shard-scaling benchmarks
#   BENCH='ProbeModes' scripts/bench.sh   # just the probe-mode comparisons
#   BENCH='Lease|Laload' scripts/bench.sh # lease manager + name-service benchmarks,
#                                    # incl. the laload loopback smoke (one full
#                                    # verified closed-loop run per iteration)
#   COUNT=5 scripts/bench.sh         # repetitions for stable statistics
#   scripts/bench.sh --ab            # HTTP-vs-wire A/B only -> benchmarks/wire-ab.txt
#
# latest.txt is the raw `go test -bench` output; latest.json maps benchmark
# name -> ns/op (averaged over COUNT repetitions), so the perf trajectory is
# diffable across PRs with plain JSON tooling. Before each run the previous
# latest.{txt,json} are rotated to previous.{txt,json}, and afterwards a
# per-benchmark delta table (prev ns/op, new ns/op, %) is printed and written
# to benchmarks/delta.txt so regressions are visible at a glance (and in the
# PR diff when the recorded files are committed).
set -euo pipefail

cd "$(dirname "$0")/.."

# --ab: run only the protocol A/B pair (the identical acquire+release
# workload over HTTP/JSON and over the binary wire protocol) and record the
# speedup factor in benchmarks/wire-ab.txt.
if [ "${1:-}" = "--ab" ]; then
  COUNT="${COUNT:-3}"
  BENCHTIME="${BENCHTIME:-1s}"
  OUT_DIR=benchmarks
  OUT_AB="$OUT_DIR/wire-ab.txt"
  mkdir -p "$OUT_DIR"
  {
    echo "# go test -bench BenchmarkServiceAB -benchtime $BENCHTIME -count $COUNT"
    echo "# $(date -u +"%Y-%m-%dT%H:%M:%SZ") $(go version)"
    go test -run xxx -bench 'BenchmarkServiceAB' -benchtime "$BENCHTIME" -count "$COUNT" .
  } | tee "$OUT_AB.raw"
  # Average repetitions per protocol and append the headline speedup factor.
  awk '
    /^BenchmarkServiceAB\/proto=http/ { http += $3; nh++ }
    /^BenchmarkServiceAB\/proto=wire/ { wire += $3; nw++ }
    { print }
    END {
      if (nh > 0 && nw > 0 && wire > 0) {
        printf "\n# http %.0f ns/op, wire %.0f ns/op over %d reps\n", http / nh, wire / nw, nh
        printf "# wire speedup over HTTP: %.2fx\n", (http / nh) / (wire / nw)
      }
    }
  ' "$OUT_AB.raw" > "$OUT_AB"
  rm -f "$OUT_AB.raw"
  tail -3 "$OUT_AB"
  echo "wrote $OUT_AB"
  exit 0
fi

BENCH="${BENCH:-.}"
COUNT="${COUNT:-1}"
BENCHTIME="${BENCHTIME:-1s}"
OUT_DIR=benchmarks
OUT="$OUT_DIR/latest.txt"
OUT_JSON="$OUT_DIR/latest.json"

mkdir -p "$OUT_DIR"

# Keep the previous run around for manual diffing.
if [ -f "$OUT" ]; then
  cp "$OUT" "$OUT_DIR/previous.txt"
fi
if [ -f "$OUT_JSON" ]; then
  cp "$OUT_JSON" "$OUT_DIR/previous.json"
fi

{
  echo "# go test -bench $BENCH -benchtime $BENCHTIME -count $COUNT"
  echo "# $(date -u +"%Y-%m-%dT%H:%M:%SZ") $(go version)"
  go test -run xxx -bench "$BENCH" -benchtime "$BENCHTIME" -count "$COUNT" .
} | tee "$OUT"

# Distill the raw output into benchmark name -> ns/op. The -N GOMAXPROCS
# suffix is stripped and repetitions (COUNT > 1) are averaged.
awk '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (i = 3; i < NF; i++) {
      if ($(i + 1) == "ns/op") {
        if (!(name in sum)) order[++k] = name
        sum[name] += $(i)
        cnt[name]++
      }
    }
  }
  END {
    printf "{\n"
    for (j = 1; j <= k; j++) {
      n = order[j]
      printf "  \"%s\": %.2f%s\n", n, sum[n] / cnt[n], (j < k ? "," : "")
    }
    printf "}\n"
  }
' "$OUT" > "$OUT_JSON"

# Per-benchmark delta table against the rotated previous run. Both files are
# the flat `"name": ns_op` JSON written above, so plain awk can join them.
OUT_DELTA="$OUT_DIR/delta.txt"
if [ -f "$OUT_DIR/previous.json" ]; then
  awk -F'"' '
    /":/ {
      name = $2
      val = $3
      gsub(/[:, ]/, "", val)
      if (NR == FNR) { prev[name] = val; next }
      order[++k] = name
      new[name] = val
    }
    END {
      printf "%-60s %12s %12s %8s\n", "benchmark", "prev ns/op", "new ns/op", "delta"
      for (j = 1; j <= k; j++) {
        n = order[j]
        if (n in prev && prev[n] + 0 > 0) {
          pct = (new[n] - prev[n]) / prev[n] * 100
          printf "%-60s %12.2f %12.2f %+7.1f%%\n", n, prev[n], new[n], pct
        } else {
          printf "%-60s %12s %12.2f %8s\n", n, "-", new[n], "new"
        }
      }
    }
  ' "$OUT_DIR/previous.json" "$OUT_JSON" | tee "$OUT_DELTA"
else
  echo "no previous.json; skipping delta table" | tee "$OUT_DELTA"
fi

echo "wrote $OUT, $OUT_JSON and $OUT_DELTA"
