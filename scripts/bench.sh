#!/usr/bin/env bash
# Runs the benchmark suite and records the results under benchmarks/, so a
# baseline can be diffed against after performance work (e.g. with
# golang.org/x/perf/cmd/benchstat when available):
#
#   scripts/bench.sh                 # full suite -> benchmarks/latest.txt
#   BENCH='Substrates' scripts/bench.sh   # just the substrate comparisons
#   COUNT=5 scripts/bench.sh         # repetitions for stable statistics
set -euo pipefail

cd "$(dirname "$0")/.."

BENCH="${BENCH:-.}"
COUNT="${COUNT:-1}"
BENCHTIME="${BENCHTIME:-1s}"
OUT_DIR=benchmarks
OUT="$OUT_DIR/latest.txt"

mkdir -p "$OUT_DIR"

# Keep the previous run around for manual diffing.
if [ -f "$OUT" ]; then
  cp "$OUT" "$OUT_DIR/previous.txt"
fi

{
  echo "# go test -bench $BENCH -benchtime $BENCHTIME -count $COUNT"
  echo "# $(date -u +"%Y-%m-%dT%H:%M:%SZ") $(go version)"
  go test -run xxx -bench "$BENCH" -benchtime "$BENCHTIME" -count "$COUNT" .
} | tee "$OUT"

echo "wrote $OUT"
