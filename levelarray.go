// Package levelarray is the public API of the LevelArray library: a fast,
// practical long-lived renaming / activity-array data structure, reproducing
// Alistarh, Kopinsky, Matveev and Shavit, "The LevelArray: A Fast, Practical
// Long-Lived Renaming Algorithm" (ICDCS 2014, arXiv:1405.5461).
//
// An activity array lets up to n concurrent participants register (Get a
// unique small integer name), deregister (Free it), and lets any thread
// Collect the set of currently registered names. The LevelArray implements
// Get in O(1) expected and O(log log n) whp test-and-set probes over
// long-lived executions, Free in one step, and Collect in O(n) steps, using
// 2n+n slots of memory.
//
// Quick start:
//
//	arr, err := levelarray.New(levelarray.Config{Capacity: 64})
//	if err != nil { ... }
//	h := arr.Handle()            // one handle per goroutine
//	name, err := h.Get()         // register
//	...                          // use the name, e.g. index a slot array
//	err = h.Free()               // deregister
//	registered := arr.Collect(nil) // scan the registered set
//
// The public API is a thin façade over the internal packages; the comparator
// algorithms, the benchmark harness, the execution simulator and the
// application substrates (memory reclamation, STM, flat combining, barriers)
// live under internal/ and are exercised by the cmd/ drivers and examples/.
package levelarray

import (
	"github.com/levelarray/levelarray/internal/activity"
	"github.com/levelarray/levelarray/internal/core"
	"github.com/levelarray/levelarray/internal/rng"
)

// Array is the long-lived renaming interface: Get/Free/Collect with the
// guarantees described in the package comment. The LevelArray implements it,
// as do the comparator algorithms used by the benchmarks.
type Array = activity.Array

// Handle is the per-participant endpoint of an Array. Handles are not safe
// for concurrent use; every goroutine owns its handle.
type Handle = activity.Handle

// ProbeStats are the per-handle registration cost statistics (number of
// test-and-set trials per Get), the metric the paper's evaluation reports.
type ProbeStats = activity.ProbeStats

// LevelArray is the paper's algorithm. Construct it with New.
type LevelArray = core.LevelArray

// Config parameterizes a LevelArray. The zero value of every field except
// Capacity selects the paper's defaults (a 2n-slot main array, one probe per
// batch, a Marsaglia xorshift generator).
type Config = core.Config

// RNGKind selects the pseudo-random generator family used for probe choices.
type RNGKind = rng.Kind

// SpaceKind selects the slot substrate layout (the Config.Space knob).
type SpaceKind = core.SpaceKind

// Available substrate layouts. SpaceBitmap — 64 slots per word, word-at-a-
// time Collect, dispatch-free hot path — is the default; the others exist
// for contention tuning (SpaceBitmapPadded) and for the layout-comparison
// benchmarks (SpacePadded, SpaceCompact).
const (
	SpaceBitmap       = core.SpaceBitmap
	SpaceBitmapPadded = core.SpaceBitmapPadded
	SpacePadded       = core.SpacePadded
	SpaceCompact      = core.SpaceCompact
)

// ProbeMode selects the write-side probing strategy (the Config.Probe knob).
type ProbeMode = core.ProbeMode

// Available probe modes. ProbeSlot — one test-and-set on the exact slot the
// RNG chose, as the paper specifies — is the default; ProbeWord claims any
// free slot of the probed slot's covering 64-slot bitmap word with a single
// load plus a single fetch-or, which dominates at high fill (see the README's
// "Probe modes" section for the faithfulness trade-off).
const (
	ProbeSlot = core.ProbeSlot
	ProbeWord = core.ProbeWord
)

// Available generator families: Marsaglia xorshift (64- and 32-bit), the
// Park-Miller/Lehmer MINSTD generator, and SplitMix64.
const (
	RNGXorshift   = rng.KindXorshift
	RNGXorshift32 = rng.KindXorshift32
	RNGLehmer     = rng.KindLehmer
	RNGSplitMix   = rng.KindSplitMix
)

// Errors returned by Array implementations.
var (
	// ErrAlreadyRegistered is returned by Get when the handle already holds
	// a name.
	ErrAlreadyRegistered = activity.ErrAlreadyRegistered
	// ErrNotRegistered is returned by Free when the handle holds no name.
	ErrNotRegistered = activity.ErrNotRegistered
	// ErrFull is returned by Get when no free slot exists anywhere in the
	// namespace, which can only happen when more participants than the
	// configured capacity register simultaneously.
	ErrFull = activity.ErrFull
)

// New builds a LevelArray for at most cfg.Capacity simultaneously registered
// participants.
func New(cfg Config) (*LevelArray, error) {
	return core.New(cfg)
}

// MustNew is New but panics on error; intended for examples and tests with
// constant configurations.
func MustNew(cfg Config) *LevelArray {
	return core.MustNew(cfg)
}
