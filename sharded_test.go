package levelarray_test

import (
	"sync"
	"testing"

	levelarray "github.com/levelarray/levelarray"
)

// TestPublicShardedAPI exercises the documented sharded flow through the
// public façade only: construction, home-shard Gets from concurrent
// goroutines, a merged Collect, per-shard stats and steal configuration.
func TestPublicShardedAPI(t *testing.T) {
	arr, err := levelarray.NewSharded(levelarray.ShardedConfig{
		Shards:   4,
		Capacity: 64,
		Steal:    levelarray.StealOccupancy,
	})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	if arr.Shards() != 4 || arr.Capacity() != 64 {
		t.Fatalf("Shards=%d Capacity=%d, want 4/64", arr.Shards(), arr.Capacity())
	}

	const goroutines = 16
	names := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		h := arr.Handle()
		wg.Add(1)
		go func() {
			defer wg.Done()
			name, err := h.Get()
			if err != nil {
				t.Errorf("goroutine %d: Get: %v", g, err)
				return
			}
			names[g] = name
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	seen := make(map[int]bool)
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate global name %d", n)
		}
		seen[n] = true
	}
	collected := arr.Collect(nil)
	if len(collected) != goroutines {
		t.Fatalf("Collect returned %d names, want %d", len(collected), goroutines)
	}
	for _, n := range collected {
		if !seen[n] {
			t.Fatalf("Collect returned unheld name %d", n)
		}
		shardIdx, _ := arr.ShardOf(n)
		if shardIdx < 0 || shardIdx >= arr.Shards() {
			t.Fatalf("name %d decodes to shard %d", n, shardIdx)
		}
	}

	stats := arr.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats has %d entries, want 4", len(stats))
	}
	total := 0
	for _, s := range stats {
		total += s.Occupancy
	}
	if total != goroutines {
		t.Fatalf("ShardStats occupancy sum %d, want %d", total, goroutines)
	}

	if s := levelarray.DefaultShards(); s < 1 || s&(s-1) != 0 {
		t.Fatalf("DefaultShards() = %d, not a power of two", s)
	}
	if _, err := levelarray.NewSharded(levelarray.ShardedConfig{Shards: 3, Capacity: 8}); err == nil {
		t.Fatal("NewSharded accepted a non-power-of-two shard count")
	}
}
