package levelarray

import (
	"github.com/levelarray/levelarray/internal/lease"
)

// Leased wraps any Array (a LevelArray or a Sharded composition) in a lease
// manager: every registration becomes a TTL-bounded, token-fenced session,
// the crash-safety layer for holders that may never call Free — remote
// clients, preemptible workers, anything outside the process. Acquire
// returns a name plus a fencing token and deadline, Renew extends it,
// Release frees it, and a background expirer (Start) reclaims overdue names
// through a hashed timer wheel in O(expired) per tick, cross-checked against
// the array's word-level bitmap state. See the internal/lease package
// documentation for the full contract.
//
//	arr := levelarray.MustNewSharded(levelarray.ShardedConfig{Capacity: 4096})
//	mgr, err := levelarray.NewLeased(arr, levelarray.LeaseConfig{})
//	mgr.Start()                       // background expirer
//	l, err := mgr.Acquire(5 * time.Second)
//	...                               // use l.Name; renew before l.Deadline
//	_, err = mgr.Renew(l.Name, l.Token, 5*time.Second)
//	err = mgr.Release(l.Name, l.Token)
//	mgr.Close()
//
// cmd/laserve serves a Leased manager over HTTP/JSON, and cmd/laload drives
// and verifies it from the client side.
type Leased = lease.Manager

// LeaseConfig parameterizes a Leased manager (expirer tick interval, timer
// wheel size, maximum TTL, clock override).
type LeaseConfig = lease.Config

// Lease describes one granted session: the name, its fencing token, and the
// deadline (zero for an infinite lease).
type Lease = lease.Lease

// LeaseStats is the lease manager's observability snapshot: active leases,
// operation and expiration counts, stale-token rejections, orphan reclaims.
type LeaseStats = lease.Stats

// Errors returned by the lease layer beyond those of the underlying Array.
var (
	// ErrStaleToken is returned by Renew and Release when the presented
	// fencing token does not match the name's current lease.
	ErrStaleToken = lease.ErrStaleToken
	// ErrNotLeased is returned by Renew and Release when the name has no
	// active lease.
	ErrNotLeased = lease.ErrNotLeased
	// ErrLeaseManagerClosed is returned after Close.
	ErrLeaseManagerClosed = lease.ErrClosed
	// ErrTTLTooLong is returned when a requested TTL exceeds the configured
	// MaxTTL.
	ErrTTLTooLong = lease.ErrTTLTooLong
)

// NewLeased builds a lease manager over arr. The expirer is not started;
// call Start for background expiry (or Tick from a test clock).
func NewLeased(arr Array, cfg LeaseConfig) (*Leased, error) {
	return lease.NewManager(arr, cfg)
}

// MustNewLeased is NewLeased but panics on error; for examples and tests.
func MustNewLeased(arr Array, cfg LeaseConfig) *Leased {
	return lease.MustNewManager(arr, cfg)
}
