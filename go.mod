module github.com/levelarray/levelarray

go 1.24
