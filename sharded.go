package levelarray

import (
	"github.com/levelarray/levelarray/internal/shard"
)

// Sharded composes S independent LevelArray shards behind one global
// namespace: the scaling layer for deployments whose load exceeds what a
// single contention domain should absorb. Each shard keeps the paper's
// per-array probe bounds; aggregate capacity and throughput scale with the
// shard count. See the package shard documentation for the global-name
// layout (shard*Stride + local) and the steal policy.
//
//	arr, err := levelarray.NewSharded(levelarray.ShardedConfig{
//		Shards:   8,          // power of two; 0 = GOMAXPROCS rounded up
//		Capacity: 8 * 1024,   // total across shards
//	})
//	h := arr.Handle()         // handle with a home shard; one per goroutine
//	name, err := h.Get()      // home-shard Get, stealing only when full
//	...
//	err = h.Free()
//	all := arr.Collect(nil)   // merged word-at-a-time scan of every shard
type Sharded = shard.Sharded

// ShardedConfig parameterizes a Sharded array. The zero value of every field
// except Capacity selects the defaults: GOMAXPROCS-rounded shard count,
// occupancy-guided stealing, round-robin home assignment, and the paper's
// LevelArray defaults (via the embedded Array template) for every shard.
type ShardedConfig = shard.Config

// ShardedHandle is the concrete handle type returned by Sharded.Handle, with
// the shard-specific accessors (Home, LastStolen) beyond the Handle
// interface.
type ShardedHandle = shard.Handle

// ShardStats is the per-shard observability record returned by
// Sharded.ShardStats.
type ShardStats = shard.ShardStats

// StealKind selects the steal-target policy used when a handle's home shard
// is full.
type StealKind = shard.StealKind

// Available steal policies.
const (
	// StealOccupancy tries the emptiest siblings first, by cached occupancy.
	StealOccupancy = shard.StealOccupancy
	// StealRandom tries uniformly random siblings.
	StealRandom = shard.StealRandom
	// StealSequential tries siblings in ring order.
	StealSequential = shard.StealSequential
)

// AffinityKind selects how new handles are assigned their home shard.
type AffinityKind = shard.AffinityKind

// Available home-shard affinity policies.
const (
	// AffinityRoundRobin hands out homes cyclically (exact balance).
	AffinityRoundRobin = shard.AffinityRoundRobin
	// AffinityRandom hashes the handle seed to a home (expected balance).
	AffinityRandom = shard.AffinityRandom
)

// DefaultShards returns the default shard count: GOMAXPROCS rounded up to a
// power of two.
func DefaultShards() int { return shard.DefaultShards() }

// NewSharded builds a Sharded array for at most cfg.Capacity simultaneously
// registered participants spread across cfg.Shards shards.
func NewSharded(cfg ShardedConfig) (*Sharded, error) {
	return shard.New(cfg)
}

// MustNewSharded is NewSharded but panics on error; intended for examples
// and tests with constant configurations.
func MustNewSharded(cfg ShardedConfig) *Sharded {
	return shard.MustNew(cfg)
}
